//! Reusable allocator conformance and stress checks.
//!
//! Each allocator crate in the workspace (lfmalloc, dlheap, ptmalloc,
//! hoard) runs this same battery from its own test suite, so the four
//! implementations are held to one contract: the [`RawMalloc`] safety
//! contract plus "bytes you wrote stay yours until you free them".
//!
//! All checks fill each allocated block with a pattern derived from its
//! address and verify the pattern just before freeing; any two live
//! blocks that overlap, or any allocator metadata written into a live
//! block, trips an assertion.

use crate::{RawMalloc, MIN_MALLOC_ALIGN};
use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Arc;

/// Deterministic xorshift64* PRNG so the kit needs no external crates and
/// failures replay exactly.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a PRNG from a nonzero seed (zero is mapped to a constant).
    pub fn new(seed: u64) -> Self {
        TestRng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Fills `size` bytes at `p` with a pattern derived from the address.
///
/// # Safety
///
/// `p` must point to at least `size` writable bytes.
pub unsafe fn fill(p: *mut u8, size: usize) {
    let tag = (p as usize as u64).wrapping_mul(0x9E3779B97F4A7C15);
    for i in 0..size {
        *p.add(i) = (tag >> ((i % 8) * 8)) as u8 ^ (i as u8);
    }
}

/// Verifies a pattern written by [`fill`]; panics on mismatch.
///
/// # Safety
///
/// `p` must point to at least `size` readable bytes previously filled.
pub unsafe fn check_fill(p: *mut u8, size: usize) {
    let tag = (p as usize as u64).wrapping_mul(0x9E3779B97F4A7C15);
    for i in 0..size {
        let want = (tag >> ((i % 8) * 8)) as u8 ^ (i as u8);
        let got = *p.add(i);
        assert_eq!(
            got, want,
            "corrupted byte {i} of block {:p} (size {size}): got {got:#x}, want {want:#x}",
            p
        );
    }
}

/// Fills `size` bytes at `p` with a pattern derived from `nonce`
/// (position-based, **not** address-based, so the pattern survives a
/// moving `realloc` and can be re-verified at the new address).
///
/// # Safety
///
/// `p` must point to at least `size` writable bytes.
pub unsafe fn fill_seeded(p: *mut u8, size: usize, nonce: u64) {
    let tag = nonce.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD6E8_FEB8_6659_FD93;
    for i in 0..size {
        unsafe { *p.add(i) = (tag >> ((i % 8) * 8)) as u8 ^ (i as u8) };
    }
}

/// Verifies a pattern written by [`fill_seeded`] with the same `nonce`;
/// panics on the first mismatching byte.
///
/// # Safety
///
/// `p` must point to at least `size` readable bytes.
pub unsafe fn check_seeded(p: *mut u8, size: usize, nonce: u64) {
    let tag = nonce.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD6E8_FEB8_6659_FD93;
    for i in 0..size {
        let want = (tag >> ((i % 8) * 8)) as u8 ^ (i as u8);
        let got = unsafe { *p.add(i) };
        assert_eq!(
            got, want,
            "corrupted byte {i} of block {:p} (size {size}, nonce {nonce:#x}): got {got:#x}, want {want:#x}",
            p
        );
    }
}

/// Runs `scenario` once per seed, re-panicking any failure with the
/// seed prepended in a uniform, grep-able form:
///
/// ```text
/// [seed 0xF00D_0002] <scenario name>: <original panic message>
/// ```
///
/// Every multi-seed test (torture, liveness, memory-pressure,
/// hardening, oracle differential) routes its loop through this helper
/// so a failing seed is always printed and can be fed straight back to
/// a one-seed rerun or to the trace replayer (see EXPERIMENTS.md,
/// "Record → shrink → replay").
pub fn for_each_seed<F: FnMut(u64)>(name: &str, seeds: &[u64], mut scenario: F) {
    for &seed in seeds {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scenario(seed)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!("[seed {seed:#x}] {name}: {msg}");
        }
    }
}

/// Claims an exclusive-ownership canary word at `addr` and immediately
/// releases it: the word must be 0 (unclaimed), is swapped to 1, checked,
/// and stored back to 0. Two threads holding the "same" resource at once
/// (ABA, double-allocation, duplicated pop) trip the assertion with
/// `msg`. Shared by the concurrency tests in `lockfree-structs` and
/// `osmem` that used to carry copy-pasted canary blocks.
///
/// # Safety
///
/// `addr` must point to an 8-aligned `usize` word that is writable, was
/// zero before the resource first circulated, and is used only through
/// this helper while the resource is shared.
pub unsafe fn canary_claim_release(addr: usize, msg: &str) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let canary = unsafe { &*(addr as *const AtomicUsize) };
    assert_eq!(canary.swap(1, Ordering::AcqRel), 0, "{msg}");
    canary.store(0, Ordering::Release);
}

/// Basic single-thread contract: varied sizes round-trip, results are
/// non-null, aligned, distinct while live, and data is preserved.
pub fn check_basic<A: RawMalloc>(alloc: &A) {
    let sizes: &[usize] = &[
        0, 1, 7, 8, 9, 15, 16, 17, 24, 31, 32, 48, 63, 64, 65, 100, 127, 128, 200, 255, 256, 384,
        511, 512, 1000, 1024, 2000, 4096, 8192,
    ];
    unsafe {
        let mut live: Vec<(*mut u8, usize)> = Vec::new();
        let mut seen = HashSet::new();
        for &sz in sizes {
            let p = alloc.malloc(sz);
            assert!(!p.is_null(), "malloc({sz}) returned null");
            assert!(
                (p as usize) % MIN_MALLOC_ALIGN == 0,
                "malloc({sz}) => {p:p} not {MIN_MALLOC_ALIGN}-aligned"
            );
            assert!(seen.insert(p as usize), "malloc({sz}) returned a live pointer twice");
            fill(p, sz);
            live.push((p, sz));
        }
        for &(p, sz) in &live {
            check_fill(p, sz);
            alloc.free(p);
        }
    }
}

/// Zero-size allocations are valid, unique and freeable.
pub fn check_zero_size<A: RawMalloc>(alloc: &A) {
    unsafe {
        let a = alloc.malloc(0);
        let b = alloc.malloc(0);
        assert!(!a.is_null() && !b.is_null());
        assert_ne!(a, b, "two live zero-size blocks must be distinct");
        alloc.free(a);
        alloc.free(b);
        // Null free is a no-op.
        alloc.free(core::ptr::null_mut());
    }
}

/// Overflow-adjacent requests fail cleanly (null), never wrap into a
/// small allocation or panic: sizes near `usize::MAX` and absurd
/// alignments must all be refused.
pub fn check_overflow<A: RawMalloc>(alloc: &A) {
    unsafe {
        for &sz in &[usize::MAX, usize::MAX - 7, usize::MAX - 4096, usize::MAX / 2 + 1] {
            let p = alloc.malloc(sz);
            assert!(p.is_null(), "malloc({sz:#x}) must fail cleanly, got {p:p}");
        }
        for &(sz, align) in &[
            (usize::MAX, 4096usize),
            (8usize, 1usize << 63),
            (usize::MAX / 2 + 1, 1usize << 32),
        ] {
            let p = alloc.malloc_aligned(sz, align);
            assert!(p.is_null(), "malloc_aligned({sz:#x}, {align:#x}) must fail cleanly");
        }
    }
}

/// The C `calloc` contract: zeroed memory, overflow-checked multiply,
/// zero-element arrays valid and unique. Covers small, class-boundary,
/// and large (straight-to-OS) shapes so allocators with a fresh-page
/// fast path are held to the same observable behavior as the
/// malloc+memset default.
pub fn check_calloc<A: RawMalloc>(alloc: &A) {
    unsafe {
        for &(count, size) in &[
            (1usize, 1usize),
            (3, 8),
            (7, 24),
            (100, 10),
            (1, 4096),
            (13, 1000),   // crosses into larger classes
            (5, 20_000),  // large path
            (1, 1 << 20), // large path, single element
        ] {
            let p = alloc.calloc(count, size);
            assert!(!p.is_null(), "calloc({count}, {size}) returned null");
            assert_eq!(
                (p as usize) % MIN_MALLOC_ALIGN,
                0,
                "calloc({count}, {size}) misaligned"
            );
            let total = count * size;
            for i in 0..total {
                assert_eq!(
                    *p.add(i),
                    0,
                    "calloc({count}, {size}): byte {i} not zeroed"
                );
            }
            // The memory is ours: write it, free it.
            fill(p, total.min(4096));
            alloc.free(p);
        }
        // Overflowing products fail cleanly — never wrap into a small
        // allocation.
        for &(count, size) in &[
            (usize::MAX, 2usize),
            (2, usize::MAX),
            (usize::MAX / 2 + 1, 2),
            ((1usize << 33), 1usize << 33),
        ] {
            let p = alloc.calloc(count, size);
            assert!(p.is_null(), "calloc({count:#x}, {size:#x}) must fail cleanly, got {p:p}");
        }
        // Zero-element arrays behave like malloc(0): valid and unique.
        let a = alloc.calloc(0, 16);
        let b = alloc.calloc(16, 0);
        assert!(!a.is_null() && !b.is_null(), "calloc with a zero dimension must succeed");
        assert_ne!(a, b, "two live zero-size calloc blocks must be distinct");
        alloc.free(a);
        alloc.free(b);
    }
}

/// The C `realloc` content contract: `min(old, new)` bytes survive,
/// across shrink-in-place, same-class growth, cross-size-class moves,
/// and the small↔large boundary in both directions. (The pointer-level
/// behavior is pinned by each allocator's own tests; this check is
/// about the *bytes*.)
pub fn check_realloc_contents<A: RawMalloc>(alloc: &A, seed: u64) {
    let cases: &[(usize, usize)] = &[
        (64, 24),        // shrink within / across small classes
        (40, 40),        // same size
        (24, 25),        // nudge across a class boundary
        (100, 5_000),    // grow across size classes
        (5_000, 96),     // shrink back down
        (300, 100_000),  // small -> large
        (100_000, 512),  // large -> small
        (70_000, 90_000) // large -> large
    ];
    let mut rng = TestRng::new(seed);
    for (i, &(old, new)) in cases.iter().enumerate() {
        let nonce = rng.next_u64() ^ i as u64;
        unsafe {
            let p = alloc.malloc(old);
            assert!(!p.is_null(), "malloc({old}) returned null");
            fill_seeded(p, old, nonce);
            let q = alloc.realloc(p, old, new);
            assert!(!q.is_null(), "realloc({old} -> {new}) returned null");
            // The realloc contract: min(old, new) bytes preserved.
            check_seeded(q, old.min(new), nonce);
            // And the whole new extent is writable.
            fill_seeded(q, new, nonce ^ 1);
            check_seeded(q, new, nonce ^ 1);
            alloc.free(q);
        }
    }
}

/// Large blocks (beyond any small size class) round-trip and hold data.
pub fn check_large<A: RawMalloc>(alloc: &A) {
    unsafe {
        for &sz in &[16 * 1024, 64 * 1024, 1 << 20, (1 << 20) + 13] {
            let p = alloc.malloc(sz);
            assert!(!p.is_null(), "large malloc({sz}) returned null");
            // Touch first/last pages rather than every byte (speed).
            fill(p, 256);
            fill(p.add(sz - 256), 256);
            check_fill(p, 256);
            check_fill(p.add(sz - 256), 256);
            alloc.free(p);
        }
    }
}

/// Allocate a batch, free in LIFO / FIFO / random order, repeat.
///
/// Exercises superblock free-list push/pop in every order the paper's
/// Larson benchmark does.
pub fn check_free_orders<A: RawMalloc>(alloc: &A, seed: u64) {
    let mut rng = TestRng::new(seed);
    for round in 0..3 {
        unsafe {
            let n = 200;
            let mut blocks: Vec<(*mut u8, usize)> = (0..n)
                .map(|_| {
                    let sz = rng.range(1, 257);
                    let p = alloc.malloc(sz);
                    assert!(!p.is_null());
                    fill(p, sz);
                    (p, sz)
                })
                .collect();
            match round {
                0 => blocks.reverse(), // LIFO
                1 => {}                // FIFO
                _ => {
                    // Fisher-Yates shuffle
                    for i in (1..blocks.len()).rev() {
                        let j = rng.range(0, i + 1);
                        blocks.swap(i, j);
                    }
                }
            }
            for (p, sz) in blocks {
                check_fill(p, sz);
                alloc.free(p);
            }
        }
    }
}

/// Steady-state churn: keep `slots` live blocks, repeatedly replace a
/// random slot with a new random-size block (the Larson inner loop).
pub fn check_churn<A: RawMalloc>(alloc: &A, slots: usize, iters: usize, seed: u64) {
    let mut rng = TestRng::new(seed);
    unsafe {
        let mut live: Vec<(*mut u8, usize)> = (0..slots)
            .map(|_| {
                let sz = rng.range(16, 81);
                let p = alloc.malloc(sz);
                assert!(!p.is_null());
                fill(p, sz);
                (p, sz)
            })
            .collect();
        for _ in 0..iters {
            let i = rng.range(0, slots);
            let (p, sz) = live[i];
            check_fill(p, sz);
            alloc.free(p);
            let nsz = rng.range(16, 81);
            let np = alloc.malloc(nsz);
            assert!(!np.is_null());
            fill(np, nsz);
            live[i] = (np, nsz);
        }
        for (p, sz) in live {
            check_fill(p, sz);
            alloc.free(p);
        }
    }
}

/// Multithreaded churn: `threads` threads run [`check_churn`] in parallel
/// on the same allocator.
pub fn check_concurrent_churn<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    iters: usize,
) {
    let mut handles = Vec::new();
    for t in 0..threads {
        let a = Arc::clone(&alloc);
        handles.push(std::thread::spawn(move || {
            check_churn(&*a, 64, iters, 0xC0FFEE + t as u64);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Producer-consumer / remote free: blocks allocated on one thread are
/// verified and freed on another (the pattern §4.1's Producer-consumer
/// benchmark and Hoard's "passive false sharing" test stress).
pub fn check_remote_free<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    producers: usize,
    blocks_per_producer: usize,
) {
    let (tx, rx) = mpsc::channel::<(usize, usize)>();
    let mut handles = Vec::new();
    for t in 0..producers {
        let a = Arc::clone(&alloc);
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = TestRng::new(0xDEAD + t as u64);
            for _ in 0..blocks_per_producer {
                let sz = rng.range(8, 129);
                unsafe {
                    let p = a.malloc(sz);
                    assert!(!p.is_null());
                    fill(p, sz);
                    tx.send((p as usize, sz)).unwrap();
                }
            }
        }));
    }
    drop(tx);
    // Consumer on this thread: verify and free everything remotely.
    let mut received = 0usize;
    for (addr, sz) in rx {
        unsafe {
            let p = addr as *mut u8;
            check_fill(p, sz);
            alloc.free(p);
        }
        received += 1;
    }
    assert_eq!(received, producers * blocks_per_producer);
    for h in handles {
        h.join().unwrap();
    }
}

/// Runs the whole battery on one allocator. Convenience for crate tests.
pub fn check_all<A: RawMalloc + Send + Sync + 'static>(alloc: Arc<A>) {
    check_basic(&*alloc);
    check_zero_size(&*alloc);
    check_overflow(&*alloc);
    check_calloc(&*alloc);
    check_realloc_contents(&*alloc, 42);
    check_large(&*alloc);
    check_free_orders(&*alloc, 42);
    check_churn(&*alloc, 128, 2_000, 7);
    check_concurrent_churn(Arc::clone(&alloc), 4, 2_000);
    check_remote_free(alloc, 3, 500);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..100 {
            let x = a.range(10, 20);
            assert_eq!(x, b.range(10, 20));
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn rng_zero_seed_is_usable() {
        let mut r = TestRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn fill_roundtrip() {
        let mut buf = vec![0u8; 333];
        unsafe {
            fill(buf.as_mut_ptr(), buf.len());
            check_fill(buf.as_mut_ptr(), buf.len());
        }
    }

    #[test]
    #[should_panic(expected = "corrupted byte")]
    fn check_fill_detects_corruption() {
        let mut buf = vec![0u8; 64];
        unsafe {
            fill(buf.as_mut_ptr(), buf.len());
            buf[17] ^= 0xFF;
            check_fill(buf.as_mut_ptr(), buf.len());
        }
    }

    #[test]
    fn seeded_fill_is_position_based() {
        // The same nonce verifies at a different address — the property
        // the realloc content check relies on.
        let mut a = vec![0u8; 200];
        let mut b = vec![0u8; 200];
        unsafe {
            fill_seeded(a.as_mut_ptr(), 200, 0xABCD);
            b.copy_from_slice(&a);
            check_seeded(b.as_mut_ptr(), 200, 0xABCD);
        }
    }

    #[test]
    #[should_panic(expected = "nonce")]
    fn seeded_check_detects_corruption() {
        let mut buf = vec![0u8; 64];
        unsafe {
            fill_seeded(buf.as_mut_ptr(), 64, 7);
            buf[3] ^= 0x10;
            check_seeded(buf.as_mut_ptr(), 64, 7);
        }
    }

    #[test]
    #[should_panic(expected = "[seed 0x2] demo: boom at 2")]
    fn for_each_seed_reports_failing_seed() {
        for_each_seed("demo", &[1, 2, 3], |seed| {
            if seed == 2 {
                panic!("boom at {seed}");
            }
        });
    }

    #[test]
    fn for_each_seed_runs_every_seed_in_order() {
        let mut seen = Vec::new();
        for_each_seed("demo", &[5, 6, 7], |s| seen.push(s));
        assert_eq!(seen, [5, 6, 7]);
    }
}
