//! Small alignment/size arithmetic helpers shared across allocator crates.
//!
//! These are the handful of bit tricks every allocator in the workspace
//! needs; centralizing them keeps the unsafe pointer arithmetic in the
//! allocators themselves as small as possible.

/// Rounds `n` up to the next multiple of `align`.
///
/// `align` must be a power of two.
///
/// # Panics
///
/// Panics in debug builds if `align` is not a power of two. Wraps on
/// overflow in release builds (callers validate sizes first).
///
/// # Example
///
/// ```
/// use malloc_api::layout::align_up;
/// assert_eq!(align_up(13, 8), 16);
/// assert_eq!(align_up(16, 8), 16);
/// assert_eq!(align_up(0, 8), 0);
/// ```
#[inline]
pub const fn align_up(n: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (n.wrapping_add(align - 1)) & !(align - 1)
}

/// Rounds `n` down to the previous multiple of `align` (a power of two).
///
/// # Example
///
/// ```
/// use malloc_api::layout::align_down;
/// assert_eq!(align_down(13, 8), 8);
/// assert_eq!(align_down(16, 8), 16);
/// ```
#[inline]
pub const fn align_down(n: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    n & !(align - 1)
}

/// Returns true if `n` is a multiple of `align` (a power of two).
///
/// # Example
///
/// ```
/// use malloc_api::layout::is_aligned;
/// assert!(is_aligned(64, 16));
/// assert!(!is_aligned(40, 16));
/// ```
#[inline]
pub const fn is_aligned(n: usize, align: usize) -> bool {
    debug_assert!(align.is_power_of_two());
    n & (align - 1) == 0
}

/// Returns true if the pointer address is a multiple of `align`.
///
/// # Example
///
/// ```
/// use malloc_api::layout::is_ptr_aligned;
/// let v: u64 = 0;
/// assert!(is_ptr_aligned(&v as *const u64 as *const u8, 8));
/// ```
#[inline]
pub fn is_ptr_aligned<T>(p: *const T, align: usize) -> bool {
    is_aligned(p as usize, align)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::TestRng;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(15, 16), 16);
        assert_eq!(align_up(17, 16), 32);
        assert_eq!(align_up(4096, 4096), 4096);
    }

    #[test]
    fn align_down_basics() {
        assert_eq!(align_down(0, 16), 0);
        assert_eq!(align_down(1, 16), 0);
        assert_eq!(align_down(31, 16), 16);
        assert_eq!(align_down(32, 16), 32);
    }

    #[test]
    fn align_arithmetic_randomized() {
        let mut rng = TestRng::new(0xA11C_1234);
        for _ in 0..4096 {
            let n = (rng.next_u64() as usize) & ((1 << 40) - 1);
            let shift = rng.range(0, 12) as u32;
            let align = 1usize << shift;

            let up = align_up(n, align);
            assert!(is_aligned(up, align));
            assert!(up >= n);
            assert!(up - n < align);

            let down = align_down(n, align);
            assert!(is_aligned(down, align));
            assert!(down <= n);
            assert!(n - down < align);

            assert_eq!(align_up(down, align), down);
            assert_eq!(align_down(up, align), up);
        }
    }
}
