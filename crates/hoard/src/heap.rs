//! Hoard's per-processor heaps, fullness groups, and the emptiness
//! invariant.
//!
//! From the paper (§2.2): "Hoard ... uses multiple processor heaps in
//! addition to a global heap. Each heap contains zero or more
//! superblocks ... Statistics are maintained individually for each
//! superblock as well as collectively for the superblocks of each heap.
//! When a processor heap is found to have too much available space, one
//! of its superblocks is moved to the global heap." And: "Typically,
//! malloc and free require one and two lock acquisitions,
//! respectively."
//!
//! The emptiness invariant is Hoard's (Berger et al., ASPLOS 2000): a
//! processor heap keeps `u >= a - K*S` or `u >= (1-f)*a` (u bytes in
//! use, a bytes owned); when both fail, an emptiest superblock moves to
//! the global heap.

use crate::sb::{region_of, SbHeader, GROUPS, GROUP_FULL, OWNER_GLOBAL, SB_SIZE};
use malloc_api::sync::Mutex;

/// Emptiness fraction numerator: `f = 1/4` (Hoard's default).
pub const EMPTY_FRACTION_NUM: usize = 1;
/// Emptiness fraction denominator.
pub const EMPTY_FRACTION_DEN: usize = 4;
/// Slack superblocks `K`.
pub const K_SLACK: usize = 4;

/// Number of size classes in the Hoard table.
pub const NUM_CLASSES_H: usize = 16;

/// Hoard block sizes (no per-block prefix — blocks are found by address
/// masking). Requests above the last entry go to the direct OS path.
pub const CLASS_SIZES_H: [u32; NUM_CLASSES_H] =
    [16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096];

/// Largest size served from superblocks.
pub const MAX_SMALL_H: usize = 4096;

/// Maps a request to a class index (`None` = direct path).
#[inline]
pub fn class_for(size: usize) -> Option<usize> {
    if size > MAX_SMALL_H {
        return None;
    }
    // 16 entries: linear scan is fine and branch-predictable.
    CLASS_SIZES_H.iter().position(|&s| s as usize >= size.max(1))
}

/// State of one heap (processor or global), guarded by its mutex.
pub struct HeapInner {
    /// `groups[class][g]`: head of the doubly-linked superblock list of
    /// fullness group `g`.
    groups: [[*mut SbHeader; GROUPS]; NUM_CLASSES_H],
    /// Bytes in use (sum of `used * sz`).
    pub u: usize,
    /// Bytes owned (sum of `capacity * sz`).
    pub a: usize,
}

unsafe impl Send for HeapInner {}

impl HeapInner {
    /// An empty heap: no superblocks, zero statistics.
    pub fn new() -> Self {
        HeapInner { groups: [[core::ptr::null_mut(); GROUPS]; NUM_CLASSES_H], u: 0, a: 0 }
    }

    /// Links `sb` into its target group (caller holds the lock and has
    /// set `owner`).
    ///
    /// # Safety
    ///
    /// `sb` valid, not in any list.
    pub unsafe fn link(&mut self, sb: *mut SbHeader) {
        unsafe {
            let g = (*sb).target_group();
            (*sb).group = g as u32;
            let class = (*sb).class as usize;
            let head = self.groups[class][g];
            (*sb).next = head;
            (*sb).prev = core::ptr::null_mut();
            if !head.is_null() {
                (*head).prev = sb;
            }
            self.groups[class][g] = sb;
        }
    }

    /// Unlinks `sb` from its current group.
    ///
    /// # Safety
    ///
    /// `sb` must be linked in this heap.
    pub unsafe fn unlink(&mut self, sb: *mut SbHeader) {
        unsafe {
            let class = (*sb).class as usize;
            let g = (*sb).group as usize;
            let (next, prev) = ((*sb).next, (*sb).prev);
            if prev.is_null() {
                debug_assert_eq!(self.groups[class][g], sb);
                self.groups[class][g] = next;
            } else {
                (*prev).next = next;
            }
            if !next.is_null() {
                (*next).prev = prev;
            }
            (*sb).next = core::ptr::null_mut();
            (*sb).prev = core::ptr::null_mut();
        }
    }

    /// Re-files `sb` if its fullness quartile changed.
    ///
    /// # Safety
    ///
    /// `sb` linked in this heap.
    pub unsafe fn refile(&mut self, sb: *mut SbHeader) {
        unsafe {
            if (*sb).target_group() != (*sb).group as usize {
                self.unlink(sb);
                self.link(sb);
            }
        }
    }

    /// Finds a superblock of `class` with a free block, preferring the
    /// fullest non-full group (Hoard's reuse policy).
    pub fn find_usable(&self, class: usize) -> Option<*mut SbHeader> {
        for g in (0..GROUP_FULL).rev() {
            let head = self.groups[class][g];
            if !head.is_null() {
                return Some(head);
            }
        }
        None
    }

    /// Finds the emptiest superblock of any class (candidate to move to
    /// the global heap). Only considers groups below half-full so the
    /// move actually relieves pressure.
    pub fn find_emptiest(&self) -> Option<*mut SbHeader> {
        for g in 0..GROUPS / 2 {
            for class in 0..NUM_CLASSES_H {
                let head = self.groups[class][g];
                if !head.is_null() {
                    return Some(head);
                }
            }
        }
        None
    }

    /// The Hoard emptiness invariant: true while the heap is allowed to
    /// keep all its superblocks.
    pub fn invariant_holds(&self) -> bool {
        self.u + K_SLACK * SB_SIZE >= self.a
            || EMPTY_FRACTION_DEN * self.u >= (EMPTY_FRACTION_DEN - EMPTY_FRACTION_NUM) * self.a
    }

    /// Count of superblocks currently linked (diagnostics).
    pub fn superblock_count(&self) -> usize {
        let mut n = 0;
        for class in 0..NUM_CLASSES_H {
            for g in 0..GROUPS {
                let mut p = self.groups[class][g];
                while !p.is_null() {
                    n += 1;
                    p = unsafe { (*p).next };
                }
            }
        }
        n
    }

    /// Drains every superblock out of the heap (teardown), returning
    /// base pointers.
    pub fn drain(&mut self) -> Vec<*mut u8> {
        let mut out = Vec::new();
        for class in 0..NUM_CLASSES_H {
            for g in 0..GROUPS {
                let mut p = self.groups[class][g];
                while !p.is_null() {
                    let next = unsafe { (*p).next };
                    out.push(p as *mut u8);
                    p = next;
                }
                self.groups[class][g] = core::ptr::null_mut();
            }
        }
        out
    }
}

impl Default for HeapInner {
    fn default() -> Self {
        Self::new()
    }
}

/// One lockable heap.
pub struct HoardHeap {
    /// The heap state, guarded by the per-heap lock the paper counts
    /// ("malloc and free require one and two lock acquisitions").
    pub inner: Mutex<HeapInner>,
}

impl HoardHeap {
    /// An empty, unlocked heap.
    pub fn new() -> Self {
        HoardHeap { inner: Mutex::new(HeapInner::new()) }
    }
}

impl Default for HoardHeap {
    fn default() -> Self {
        Self::new()
    }
}

/// Locks the heap that owns `sb` at lock-acquisition time: Hoard's
/// lock-owner loop. The owner may change (superblock moved to the global
/// heap) between the read and the lock, so verify after locking.
///
/// Returns the owner index it locked; the guard lives in `heaps`'
/// element (or the global heap for [`OWNER_GLOBAL`]).
///
/// # Safety
///
/// `sb` must be a live superblock of this allocator instance.
pub unsafe fn lock_owner<'a>(
    heaps: &'a [HoardHeap],
    global: &'a HoardHeap,
    sb: *mut SbHeader,
) -> (usize, malloc_api::sync::MutexGuard<'a, HeapInner>) {
    loop {
        let owner = unsafe { (*sb).load_owner() };
        let heap = if owner == OWNER_GLOBAL { global } else { &heaps[owner] };
        let guard = heap.inner.lock();
        if unsafe { (*sb).load_owner() } == owner {
            return (owner, guard);
        }
        // Owner changed while we waited; retry.
    }
}

/// Recovers the superblock header for a block pointer.
///
/// # Safety
///
/// As [`region_of`].
pub unsafe fn sb_of(ptr: *mut u8) -> *mut SbHeader {
    unsafe { region_of(ptr) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sb::MAGIC_SB;
    use std::alloc::{GlobalAlloc, Layout, System};

    fn new_sb(class: usize) -> *mut SbHeader {
        let l = Layout::from_size_align(SB_SIZE, SB_SIZE).unwrap();
        let p = unsafe { System.alloc_zeroed(l) };
        unsafe { SbHeader::init(p, class as u32, CLASS_SIZES_H[class]) }
    }

    unsafe fn free_sb(p: *mut SbHeader) {
        let l = Layout::from_size_align(SB_SIZE, SB_SIZE).unwrap();
        unsafe { System.dealloc(p as *mut u8, l) };
    }

    #[test]
    fn class_mapping() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(16), Some(0));
        assert_eq!(class_for(17), Some(1));
        assert_eq!(class_for(4096), Some(15));
        assert_eq!(class_for(4097), None);
        assert_eq!(class_for(0), Some(0));
    }

    #[test]
    fn link_unlink_roundtrip() {
        let mut h = HeapInner::new();
        let a = new_sb(0);
        let b = new_sb(0);
        unsafe {
            h.link(a);
            h.link(b);
            assert_eq!(h.superblock_count(), 2);
            assert_eq!(h.find_usable(0), Some(b), "most recently linked first");
            h.unlink(b);
            assert_eq!(h.find_usable(0), Some(a));
            h.unlink(a);
            assert_eq!(h.superblock_count(), 0);
            assert!(h.find_usable(0).is_none());
            free_sb(a);
            free_sb(b);
        }
    }

    #[test]
    fn refile_moves_between_groups() {
        let mut h = HeapInner::new();
        let sb = new_sb(0);
        unsafe {
            h.link(sb);
            assert_eq!((*sb).group, 0);
            // Fill it completely.
            while (*sb).pop_block().is_some() {}
            h.refile(sb);
            assert_eq!((*sb).group as usize, GROUP_FULL);
            assert!(h.find_usable(0).is_none(), "full superblocks are not usable");
            h.unlink(sb);
            free_sb(sb);
        }
    }

    #[test]
    fn invariant_detects_excess_capacity() {
        let mut h = HeapInner::new();
        // Nothing owned: trivially holds.
        assert!(h.invariant_holds());
        // Lots owned, nothing used, beyond the K-slack: violated.
        h.a = (K_SLACK + 2) * SB_SIZE;
        h.u = 0;
        assert!(!h.invariant_holds());
        // Mostly used: holds.
        h.u = h.a * 9 / 10;
        assert!(h.invariant_holds());
    }

    #[test]
    fn lock_owner_verifies() {
        let heaps = vec![HoardHeap::new(), HoardHeap::new()];
        let global = HoardHeap::new();
        let sb = new_sb(0);
        unsafe {
            (*sb).owner.store(1, core::sync::atomic::Ordering::Release);
            let (owner, _guard) = lock_owner(&heaps, &global, sb);
            assert_eq!(owner, 1);
            drop(_guard);
            (*sb).owner.store(OWNER_GLOBAL, core::sync::atomic::Ordering::Release);
            let (owner, _guard) = lock_owner(&heaps, &global, sb);
            assert_eq!(owner, OWNER_GLOBAL);
            assert_eq!((*sb).magic, MAGIC_SB);
            free_sb(sb);
        }
    }
}
