//! Hoard superblock headers and block free lists.
//!
//! Each 16 KiB, 16 KiB-aligned superblock starts with an [`SbHeader`];
//! blocks follow. `free` recovers the header by masking the block
//! address (`ptr & !(SB_SIZE-1)`) — the address-arithmetic trick Hoard
//! itself uses, which is why Hoard blocks need no per-block prefix.
//! Direct (large) allocations get their own magic-tagged header at a
//! 16 KiB-aligned base so the same masking identifies them.

use core::sync::atomic::{AtomicUsize, Ordering};

/// Superblock size (and alignment): 16 KiB, as in Hoard and the paper.
pub const SB_SIZE: usize = 1 << 14;
/// Superblock shift for the page pool.
pub const SB_SHIFT: u32 = 14;
/// Header bytes reserved at the start of each superblock.
pub const SB_HEADER: usize = 64;

/// Magic tag: superblock.
pub const MAGIC_SB: u32 = 0x5B0A_2D01;
/// Magic tag: direct OS allocation.
pub const MAGIC_DIRECT: u32 = 0xD12E_C701;

/// Owner id meaning "the global heap".
pub const OWNER_GLOBAL: usize = usize::MAX;

/// Fullness groups per (heap, class): quartiles 0..=3 plus the full
/// group. Hoard keeps superblocks sorted into fullness groups so malloc
/// can prefer nearly-full superblocks (better locality and emptier
/// superblocks become movable).
pub const GROUPS: usize = 5;
/// Index of the group holding completely full superblocks.
pub const GROUP_FULL: usize = GROUPS - 1;

/// Header at the base of every Hoard superblock. All fields except
/// `owner` are guarded by the owning heap's lock; `owner` is atomic so
/// `free` can run the lock-owner loop.
#[repr(C)]
pub struct SbHeader {
    /// [`MAGIC_SB`].
    pub magic: u32,
    /// Size class index.
    pub class: u32,
    /// Heap index owning this superblock, or [`OWNER_GLOBAL`].
    pub owner: AtomicUsize,
    /// Block size in bytes.
    pub sz: u32,
    /// Blocks in this superblock.
    pub capacity: u32,
    /// Blocks currently allocated.
    pub used: u32,
    /// Index of the first free block (`u32::MAX` = none).
    pub free_head: u32,
    /// Current fullness group index.
    pub group: u32,
    /// Explicit padding (keeps the link fields naturally aligned).
    pub _pad: u32,
    /// Intrusive group-list forward link.
    pub next: *mut SbHeader,
    /// Intrusive group-list backward link.
    pub prev: *mut SbHeader,
}

const _: () = assert!(core::mem::size_of::<SbHeader>() <= SB_HEADER);

impl SbHeader {
    /// Initializes a fresh superblock for `class` with `sz`-byte blocks,
    /// building the internal free list.
    ///
    /// # Safety
    ///
    /// `base` must point to `SB_SIZE` writable bytes aligned to
    /// `SB_SIZE`, exclusively owned.
    pub unsafe fn init(base: *mut u8, class: u32, sz: u32) -> *mut SbHeader {
        debug_assert_eq!(base as usize % SB_SIZE, 0);
        let capacity = ((SB_SIZE - SB_HEADER) / sz as usize) as u32;
        debug_assert!(capacity >= 1);
        let header = base as *mut SbHeader;
        unsafe {
            header.write(SbHeader {
                magic: MAGIC_SB,
                class,
                owner: AtomicUsize::new(OWNER_GLOBAL),
                sz,
                capacity,
                used: 0,
                free_head: 0,
                group: 0,
                _pad: 0,
                next: core::ptr::null_mut(),
                prev: core::ptr::null_mut(),
            });
            // Chain the blocks: block i links to i+1; the last links to
            // the "none" sentinel.
            for i in 0..capacity {
                let b = base.add(SB_HEADER + (i * sz) as usize) as *mut u32;
                b.write(if i + 1 < capacity { i + 1 } else { u32::MAX });
            }
        }
        header
    }

    /// The block at `idx`.
    ///
    /// # Safety
    ///
    /// `idx < capacity`; header valid.
    #[inline]
    pub unsafe fn block(&self, idx: u32) -> *mut u8 {
        let base = self as *const SbHeader as usize;
        (base + SB_HEADER + (idx as usize * self.sz as usize)) as *mut u8
    }

    /// Index of the block at `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must be a block of this superblock.
    #[inline]
    pub unsafe fn index_of(&self, ptr: *mut u8) -> u32 {
        let base = self as *const SbHeader as usize;
        ((ptr as usize - base - SB_HEADER) / self.sz as usize) as u32
    }

    /// Pops a free block (caller holds the owner heap's lock).
    ///
    /// # Safety
    ///
    /// Exclusive access via the owner lock.
    pub unsafe fn pop_block(&mut self) -> Option<*mut u8> {
        if self.free_head == u32::MAX {
            return None;
        }
        let idx = self.free_head;
        let b = unsafe { self.block(idx) };
        self.free_head = unsafe { *(b as *const u32) };
        self.used += 1;
        Some(b)
    }

    /// Pushes a block back (caller holds the owner heap's lock).
    ///
    /// # Safety
    ///
    /// `ptr` must be an allocated block of this superblock; exclusive
    /// access via the owner lock.
    pub unsafe fn push_block(&mut self, ptr: *mut u8) {
        let idx = unsafe { self.index_of(ptr) };
        unsafe { *(ptr as *mut u32) = self.free_head };
        self.free_head = idx;
        self.used -= 1;
    }

    /// The fullness group this superblock currently belongs in.
    #[inline]
    pub fn target_group(&self) -> usize {
        if self.used == self.capacity {
            GROUP_FULL
        } else {
            ((self.used as usize * (GROUPS - 1)) / self.capacity as usize).min(GROUPS - 2)
        }
    }

    /// Loads the owner with acquire ordering (for the lock-owner loop).
    #[inline]
    pub fn load_owner(&self) -> usize {
        self.owner.load(Ordering::Acquire)
    }
}

/// Recovers the 16 KiB-aligned region header from any interior pointer.
///
/// # Safety
///
/// `ptr` must point into a Hoard-owned region (superblock or direct).
#[inline]
pub unsafe fn region_of(ptr: *mut u8) -> *mut SbHeader {
    ((ptr as usize) & !(SB_SIZE - 1)) as *mut SbHeader
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::{GlobalAlloc, Layout, System};

    fn alloc_sb() -> *mut u8 {
        let l = Layout::from_size_align(SB_SIZE, SB_SIZE).unwrap();
        let p = unsafe { System.alloc_zeroed(l) };
        assert!(!p.is_null());
        p
    }

    unsafe fn free_sb(p: *mut u8) {
        let l = Layout::from_size_align(SB_SIZE, SB_SIZE).unwrap();
        unsafe { System.dealloc(p, l) };
    }

    #[test]
    fn init_builds_full_free_list() {
        let base = alloc_sb();
        unsafe {
            let h = &mut *SbHeader::init(base, 3, 128);
            assert_eq!(h.capacity as usize, (SB_SIZE - SB_HEADER) / 128);
            assert_eq!(h.used, 0);
            // Pop everything; all blocks distinct and in range.
            let mut seen = std::collections::HashSet::new();
            while let Some(b) = h.pop_block() {
                assert!(seen.insert(b as usize));
                assert!(b as usize >= base as usize + SB_HEADER);
                assert!((b as usize + 128) <= base as usize + SB_SIZE);
            }
            assert_eq!(seen.len(), h.capacity as usize);
            assert_eq!(h.used, h.capacity);
            free_sb(base);
        }
    }

    #[test]
    fn push_pop_lifo() {
        let base = alloc_sb();
        unsafe {
            let h = &mut *SbHeader::init(base, 0, 16);
            let a = h.pop_block().unwrap();
            let b = h.pop_block().unwrap();
            h.push_block(b);
            assert_eq!(h.pop_block().unwrap(), b, "free list is LIFO");
            h.push_block(b);
            h.push_block(a);
            assert_eq!(h.used, 0);
            free_sb(base);
        }
    }

    #[test]
    fn masking_recovers_header() {
        let base = alloc_sb();
        unsafe {
            let h = &mut *SbHeader::init(base, 0, 64);
            let b = h.pop_block().unwrap();
            assert_eq!(region_of(b), base as *mut SbHeader);
            assert_eq!((*region_of(b)).magic, MAGIC_SB);
            free_sb(base);
        }
    }

    #[test]
    fn fullness_groups_span_quartiles() {
        let base = alloc_sb();
        unsafe {
            let h = &mut *SbHeader::init(base, 0, 16);
            assert_eq!(h.target_group(), 0);
            while h.pop_block().is_some() {}
            assert_eq!(h.target_group(), GROUP_FULL);
            // Free one: drops out of the full group.
            let last = h.block(0);
            h.push_block(last);
            assert!(h.target_group() < GROUP_FULL);
            free_sb(base);
        }
    }

    #[test]
    fn index_of_inverts_block() {
        let base = alloc_sb();
        unsafe {
            let h = &mut *SbHeader::init(base, 0, 48);
            for i in 0..h.capacity {
                assert_eq!(h.index_of(h.block(i)), i);
            }
            free_sb(base);
        }
    }
}
