//! Hoard-style lock-based superblock allocator baseline (Berger et al.,
//! ASPLOS 2000), as described in §2.2 of the PLDI 2004 paper.
//!
//! Per-processor heaps of 16 KiB superblocks with fullness statistics, a
//! global heap that absorbs superblocks from heaps with "too much
//! available space" (the emptiness invariant, which bounds blowup), and
//! per-heap mutexes: "Typically, malloc and free require one and two
//! lock acquisitions, respectively."
//!
//! The structural behaviours the paper measures against Hoard all
//! emerge here: frees must lock the *owner's* heap (the
//! producer-consumer hotspot of §4.2.3), moving superblocks through the
//! global heap takes two locks, and blocks carry no prefix (headers are
//! found by address masking), so Hoard's 8-byte-block workloads put 1019
//! blocks in a superblock where lfmalloc puts 1024 16-byte cells.

pub mod heap;
pub mod sb;

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use heap::{class_for, lock_owner, HoardHeap, CLASS_SIZES_H};
use malloc_api::{AllocStats, RawMalloc};
use osmem::source::pages_for;
use osmem::{CountingSource, PagePool, PageSource, SystemSource};
use sb::{region_of, SbHeader, MAGIC_DIRECT, MAGIC_SB, OWNER_GLOBAL, SB_HEADER, SB_SHIFT, SB_SIZE};
use std::sync::Arc;

thread_local! {
    static THREAD_SLOT: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// Lock-contention counters (the `stats` feature): how often each lock
/// tier is taken and how many superblocks cross into the global heap.
/// The paper's Hoard critique is *lock traffic* — "malloc and free
/// require one and two lock acquisitions" — so that is what we count.
#[cfg(feature = "stats")]
#[derive(Debug, Default)]
struct LockCounters {
    heap_locks: malloc_api::telemetry::Counter,
    global_locks: malloc_api::telemetry::Counter,
    sb_moves: malloc_api::telemetry::Counter,
}

/// Snapshot of Hoard's lock-contention counters.
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HoardStats {
    /// Processor-heap mutex acquisitions (malloc lock #1 and owner-heap
    /// frees).
    pub heap_lock_acquisitions: u64,
    /// Global-heap mutex acquisitions (malloc lock #2, global-owned
    /// frees, and emptiness-invariant transfers).
    pub global_lock_acquisitions: u64,
    /// Superblocks moved from a processor heap to the global heap by the
    /// emptiness invariant.
    pub superblocks_moved_to_global: u64,
}

/// Header for direct (large) allocations; lives at a 16 KiB-aligned base
/// so the same masking as superblocks identifies it.
#[repr(C)]
struct DirectHeader {
    magic: u32,
    _pad: u32,
    total: usize,
}

/// The Hoard-style allocator.
///
/// # Example
///
/// ```
/// use hoard::Hoard;
/// use malloc_api::RawMalloc;
///
/// let a = Hoard::new(4); // four processor heaps
/// unsafe {
///     let p = a.malloc(100);
///     assert!(!p.is_null());
///     a.free(p);
/// }
/// ```
pub struct Hoard<S: PageSource = CountingSource<SystemSource>> {
    heaps: Vec<HoardHeap>,
    global: HoardHeap,
    pool: PagePool<SB_SHIFT>,
    source: Arc<S>,
    /// Frees rejected by region-magic or block-geometry validation.
    misuse: AtomicU64,
    #[cfg(feature = "stats")]
    counters: LockCounters,
}

impl Hoard<CountingSource<SystemSource>> {
    /// `nheaps` processor heaps over a counting system source.
    pub fn new(nheaps: usize) -> Self {
        Self::with_source(nheaps, Arc::new(CountingSource::new(SystemSource::new())))
    }

    /// One heap per detected CPU.
    pub fn new_detected() -> Self {
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(cpus)
    }
}

impl<S: PageSource + Send + Sync> Hoard<S> {
    /// Builds the allocator over an injected page source.
    pub fn with_source(nheaps: usize, source: Arc<S>) -> Self {
        let nheaps = nheaps.max(1);
        Hoard {
            heaps: (0..nheaps).map(|_| HoardHeap::new()).collect(),
            global: HoardHeap::new(),
            pool: PagePool::new(64), // 1 MiB batches, like the others
            source,
            misuse: AtomicU64::new(0),
            #[cfg(feature = "stats")]
            counters: LockCounters::default(),
        }
    }

    /// Lock-acquisition and superblock-movement counters.
    ///
    /// Named `lock_stats` (not `stats`) so it does not shadow
    /// [`RawMalloc::stats`] on the concrete type.
    #[cfg(feature = "stats")]
    pub fn lock_stats(&self) -> HoardStats {
        HoardStats {
            heap_lock_acquisitions: self.counters.heap_locks.get(),
            global_lock_acquisitions: self.counters.global_locks.get(),
            superblocks_moved_to_global: self.counters.sb_moves.get(),
        }
    }

    /// Frees rejected because the 16 KiB region carried neither magic
    /// value, or the pointer failed block-geometry checks against its
    /// superblock (misaligned interior pointer, out-of-range offset, or
    /// a free into an already-empty superblock).
    pub fn misuse_count(&self) -> u64 {
        self.misuse.load(Ordering::Relaxed)
    }

    /// The page source (for stats).
    pub fn source(&self) -> &Arc<S> {
        &self.source
    }

    /// Superblocks currently in the global heap (diagnostics).
    pub fn global_superblocks(&self) -> usize {
        self.global.inner.lock().superblock_count()
    }

    fn heap_index(&self) -> usize {
        THREAD_SLOT.try_with(|s| *s).unwrap_or(0) % self.heaps.len()
    }

    unsafe fn malloc_small(&self, ci: usize) -> *mut u8 {
        let sz = CLASS_SIZES_H[ci] as usize;
        let hi = self.heap_index();
        let mut heap = self.heaps[hi].inner.lock(); // lock #1
        #[cfg(feature = "stats")]
        self.counters.heap_locks.inc();
        let sb = match heap.find_usable(ci) {
            Some(sb) => sb,
            None => {
                // Check the global heap (lock #2), else map a fresh
                // superblock.
                let mut g = self.global.inner.lock();
                #[cfg(feature = "stats")]
                self.counters.global_locks.inc();
                if let Some(sb) = g.find_usable(ci) {
                    unsafe {
                        g.unlink(sb);
                        let used = (*sb).used as usize * sz;
                        let cap = (*sb).capacity as usize * sz;
                        g.u -= used;
                        g.a -= cap;
                        (*sb).owner.store(hi, Ordering::Release);
                        heap.link(sb);
                        heap.u += used;
                        heap.a += cap;
                    }
                    sb
                } else {
                    drop(g);
                    let base = self.pool.alloc(&*self.source);
                    if base.is_null() {
                        return core::ptr::null_mut();
                    }
                    unsafe {
                        let sb = SbHeader::init(base, ci as u32, sz as u32);
                        (*sb).owner.store(hi, Ordering::Release);
                        heap.link(sb);
                        heap.a += (*sb).capacity as usize * sz;
                        sb
                    }
                }
            }
        };
        unsafe {
            // A usable superblock always has a free block under the
            // fullness invariants, but if bookkeeping is ever wrong under
            // pressure, degrade to an OOM null rather than aborting the
            // process mid-lock.
            let Some(block) = (*sb).pop_block() else {
                heap.refile(sb);
                return core::ptr::null_mut();
            };
            heap.u += sz;
            heap.refile(sb);
            block
        }
    }

    unsafe fn free_small(&self, ptr: *mut u8, sb: *mut SbHeader) {
        let sz = unsafe { (*sb).sz } as usize;
        let (owner, mut guard) = unsafe { lock_owner(&self.heaps, &self.global, sb) };
        #[cfg(feature = "stats")]
        if owner == OWNER_GLOBAL {
            self.counters.global_locks.inc();
        } else {
            self.counters.heap_locks.inc();
        }
        unsafe {
            // Geometry checks under the owner's lock, before the block
            // is linked into the free list: a misaligned or out-of-range
            // pointer would corrupt the list, and a free into an empty
            // superblock would underflow `used`.
            let off = (ptr as usize).wrapping_sub(sb as usize + SB_HEADER);
            if off % sz != 0 || off >= (*sb).capacity as usize * sz || (*sb).used == 0 {
                self.misuse.fetch_add(1, Ordering::Relaxed);
                return;
            }
            (*sb).push_block(ptr);
            guard.u -= sz;
            guard.refile(sb);
        }
        if owner == OWNER_GLOBAL {
            // Fully-empty superblocks in the global heap return to the
            // page pool (bounding global-heap growth).
            unsafe {
                if (*sb).used == 0 {
                    guard.unlink(sb);
                    guard.a -= (*sb).capacity as usize * sz;
                    self.pool.dealloc(sb as *mut u8);
                }
            }
            return;
        }
        if !guard.invariant_holds() {
            // "When a processor heap is found to have too much available
            // space, one of its superblocks is moved to the global
            // heap." Lock order is always processor → global.
            if let Some(victim) = guard.find_emptiest() {
                let mut g = self.global.inner.lock();
                #[cfg(feature = "stats")]
                {
                    self.counters.global_locks.inc();
                    self.counters.sb_moves.inc();
                }
                unsafe {
                    let vsz = (*victim).sz as usize;
                    let used = (*victim).used as usize * vsz;
                    let cap = (*victim).capacity as usize * vsz;
                    guard.unlink(victim);
                    guard.u -= used;
                    guard.a -= cap;
                    (*victim).owner.store(OWNER_GLOBAL, Ordering::Release);
                    g.link(victim);
                    g.u += used;
                    g.a += cap;
                    if (*victim).used == 0 {
                        g.unlink(victim);
                        g.a -= cap;
                        self.pool.dealloc(victim as *mut u8);
                    }
                }
            }
        }
    }

    unsafe fn malloc_direct(&self, size: usize) -> *mut u8 {
        let Some(padded) = size.checked_add(SB_HEADER + osmem::PAGE_SIZE - 1) else {
            return core::ptr::null_mut();
        };
        let total = pages_for(padded & !(osmem::PAGE_SIZE - 1));
        let base = unsafe { self.source.alloc_pages(total, SB_SIZE) };
        if base.is_null() {
            return core::ptr::null_mut();
        }
        unsafe {
            (base as *mut DirectHeader)
                .write(DirectHeader { magic: MAGIC_DIRECT, _pad: 0, total });
            base.add(SB_HEADER)
        }
    }

    unsafe fn free_direct(&self, region: *mut SbHeader) {
        unsafe {
            let header = region as *mut DirectHeader;
            let total = (*header).total;
            self.source.dealloc_pages(region as *mut u8, total, SB_SIZE);
        }
    }
}

unsafe impl<S: PageSource + Send + Sync> RawMalloc for Hoard<S> {
    unsafe fn malloc(&self, size: usize) -> *mut u8 {
        match class_for(size) {
            Some(ci) => unsafe { self.malloc_small(ci) },
            None => unsafe { self.malloc_direct(size) },
        }
    }

    unsafe fn free(&self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        let region = unsafe { region_of(ptr) };
        match unsafe { (*region).magic } {
            MAGIC_SB => unsafe { self.free_small(ptr, region) },
            MAGIC_DIRECT => unsafe { self.free_direct(region) },
            // Foreign or wild pointer: its region carries neither magic.
            // Count and drop the free instead of aborting mid-workload.
            _ => {
                self.misuse.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn name(&self) -> &str {
        "hoard"
    }

    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        // Blocks are size-aligned within 16 KiB-aligned superblocks, so
        // power-of-two classes give natural alignment up to 16.
        if align <= 16 {
            let bumped = size.max(align);
            unsafe { self.malloc(bumped) }
        } else {
            core::ptr::null_mut()
        }
    }

    fn stats(&self) -> AllocStats {
        self.source.stats()
    }
}

impl<S: PageSource> Drop for Hoard<S> {
    fn drop(&mut self) {
        // Return every superblock to the pool, then unmap the pool.
        for h in &self.heaps {
            for base in h.inner.lock().drain() {
                unsafe { self.pool.dealloc(base) };
            }
        }
        for base in self.global.inner.lock().drain() {
            unsafe { self.pool.dealloc(base) };
        }
        unsafe { self.pool.release_all(&*self.source) };
    }
}

impl<S: PageSource> core::fmt::Debug for Hoard<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Hoard").field("heaps", &self.heaps.len()).finish_non_exhaustive()
    }
}

impl<S: PageSource> Hoard<S> {
    /// Makes this allocator fork-safe for the lifetime of the returned
    /// guard, by registering [`malloc_api::procfork`] hooks that hold
    /// **every** heap lock across `fork`: prepare acquires the
    /// processor heaps in index order and the global heap last —
    /// matching the hot paths' heap→global order, so prepare can never
    /// deadlock against a concurrent `malloc_small` — and parent and
    /// child both release them. Without this, a fork racing another
    /// thread's malloc snapshots some mutex locked by a thread that
    /// does not exist in the child, and the child's next allocation on
    /// that heap deadlocks forever.
    ///
    /// Only forks that run the procfork hook protocol
    /// ([`malloc_api::procfork::fork`], or raw `fork(2)` after
    /// [`malloc_api::procfork::install`]) are covered. The prepare hook
    /// allocates (a `Vec` of guards), so it must not run inside a
    /// context where the global allocator is this instance — Hoard is a
    /// baseline, never the global allocator.
    pub fn atfork_guard(&self) -> HoardAtforkGuard<'_, S> {
        let stash = Box::into_raw(Box::new(HoardAtforkStash {
            alloc: self as *const Hoard<S>,
            guards: core::cell::UnsafeCell::new(None),
        }));
        let token = malloc_api::procfork::register(malloc_api::procfork::HookSet {
            prepare: Some(hoard_atfork_prepare::<S>),
            parent: Some(hoard_atfork_release::<S>),
            child: Some(hoard_atfork_release::<S>),
            data: stash as usize,
        });
        HoardAtforkGuard { token, stash, _alloc: core::marker::PhantomData }
    }
}

/// Hook-side state of one [`Hoard::atfork_guard`] registration. Only
/// the forking thread touches `guards`, under the procfork registry
/// lock.
struct HoardAtforkStash<S: PageSource> {
    alloc: *const Hoard<S>,
    guards: core::cell::UnsafeCell<Option<Vec<malloc_api::sync::MutexGuard<'static, crate::heap::HeapInner>>>>,
}

unsafe fn hoard_atfork_prepare<S: PageSource>(data: usize) {
    let stash = unsafe { &*(data as *const HoardAtforkStash<S>) };
    let a = unsafe { &*stash.alloc };
    let mut guards = Vec::with_capacity(a.heaps.len() + 1);
    // Processor heaps in index order, then the global heap — the same
    // partial order the hot paths use (heap lock, then global lock).
    for heap in &a.heaps {
        // Lifetime erasure only: released by `hoard_atfork_release` on
        // this same thread; the allocator outlives the registration.
        guards.push(unsafe {
            core::mem::transmute::<
                malloc_api::sync::MutexGuard<'_, crate::heap::HeapInner>,
                malloc_api::sync::MutexGuard<'static, crate::heap::HeapInner>,
            >(heap.inner.lock())
        });
    }
    guards.push(unsafe {
        core::mem::transmute::<
            malloc_api::sync::MutexGuard<'_, crate::heap::HeapInner>,
            malloc_api::sync::MutexGuard<'static, crate::heap::HeapInner>,
        >(a.global.inner.lock())
    });
    unsafe { *stash.guards.get() = Some(guards) };
}

/// Parent and child both just unlock: the forking thread holds every
/// lock, so in both processes the heaps are consistent and the mutexes
/// are ours to release.
unsafe fn hoard_atfork_release<S: PageSource>(data: usize) {
    let stash = unsafe { &*(data as *const HoardAtforkStash<S>) };
    drop(unsafe { (*stash.guards.get()).take() });
}

/// RAII registration handle returned by [`Hoard::atfork_guard`];
/// unregisters the hooks (and frees the hook stash) on drop.
pub struct HoardAtforkGuard<'a, S: PageSource> {
    token: Option<malloc_api::procfork::HookToken>,
    stash: *mut HoardAtforkStash<S>,
    _alloc: core::marker::PhantomData<&'a Hoard<S>>,
}

impl<S: PageSource> HoardAtforkGuard<'_, S> {
    /// False when the procfork registry was full and no hooks could be
    /// installed (the guard is inert; fork safety is not provided).
    pub fn is_armed(&self) -> bool {
        self.token.is_some()
    }
}

impl<S: PageSource> Drop for HoardAtforkGuard<'_, S> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            // Blocks until any in-flight fork's hooks have run, so the
            // stash is quiescent when freed.
            malloc_api::procfork::unregister(token);
        }
        drop(unsafe { Box::from_raw(self.stash) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malloc_api::testkit;

    #[test]
    fn full_conformance_battery() {
        let a = Arc::new(Hoard::new(4));
        testkit::check_all(a);
    }

    #[test]
    fn atfork_guard_registers_and_unregisters() {
        let a = Hoard::new(2);
        let before = malloc_api::procfork::registered_count();
        let g = a.atfork_guard();
        assert!(g.is_armed());
        assert_eq!(malloc_api::procfork::registered_count(), before + 1);
        drop(g);
        assert_eq!(malloc_api::procfork::registered_count(), before);
    }

    #[test]
    fn single_heap_conformance() {
        let a = Arc::new(Hoard::new(1));
        testkit::check_basic(&*a);
        testkit::check_free_orders(&*a, 5);
        testkit::check_remote_free(a, 2, 500);
    }

    #[test]
    fn blocks_are_size_aligned_16() {
        let a = Hoard::new(2);
        unsafe {
            for &sz in &[8usize, 16, 100, 1000, 4096] {
                let p = a.malloc(sz);
                assert_eq!(p as usize % 16, 0, "size {sz}");
                a.free(p);
            }
        }
    }

    #[test]
    fn emptiness_invariant_moves_superblocks_to_global() {
        let a = Hoard::new(1);
        unsafe {
            // Allocate many small blocks (several superblocks), then
            // free all: the heap now holds far more capacity than use,
            // so superblocks must flow to the global heap / pool.
            let blocks: Vec<*mut u8> = (0..5_000).map(|_| a.malloc(16)).collect();
            for &p in &blocks {
                assert!(!p.is_null());
            }
            for p in blocks {
                a.free(p);
            }
            let heap_sbs = a.heaps[0].inner.lock().superblock_count();
            assert!(
                heap_sbs <= heap::K_SLACK + 2,
                "processor heap kept {heap_sbs} superblocks; invariant not enforced"
            );
        }
    }

    #[test]
    fn global_heap_reuses_superblocks_across_heaps() {
        let a = Arc::new(Hoard::new(2));
        // Thread 1 creates garbage; thread 2 should be able to reuse the
        // released capacity (via global heap or pool) without the OS
        // footprint doubling.
        let a1 = Arc::clone(&a);
        std::thread::spawn(move || unsafe {
            let blocks: Vec<*mut u8> = (0..5_000).map(|_| a1.malloc(16)).collect();
            for p in blocks {
                a1.free(p);
            }
        })
        .join()
        .unwrap();
        let peak_after_phase1 = a.stats().peak_bytes;
        let a2 = Arc::clone(&a);
        std::thread::spawn(move || unsafe {
            let blocks: Vec<*mut u8> = (0..5_000).map(|_| a2.malloc(16)).collect();
            for p in blocks {
                a2.free(p);
            }
        })
        .join()
        .unwrap();
        let peak_after_phase2 = a.stats().peak_bytes;
        assert!(
            peak_after_phase2 < peak_after_phase1 * 2,
            "no reuse across heaps: {peak_after_phase1} -> {peak_after_phase2}"
        );
    }

    #[test]
    fn exhausted_source_yields_null_not_panic() {
        use osmem::FlakySource;
        // Budget 0: every page-source call fails from the start.
        let dead = Arc::new(FlakySource::new(SystemSource::new(), 0));
        let a = Hoard::with_source(2, Arc::clone(&dead));
        unsafe {
            assert!(a.malloc(16).is_null(), "small path must report OOM");
            assert!(a.malloc(100_000).is_null(), "direct path must report OOM");
        }
        assert!(dead.denials() >= 2);

        // Budget 1: one superblock's worth of small blocks succeeds,
        // then the allocator degrades to nulls while frees keep working.
        let tight = Arc::new(FlakySource::new(SystemSource::new(), 1));
        let a = Hoard::with_source(1, Arc::clone(&tight));
        unsafe {
            let mut got = Vec::new();
            loop {
                let p = a.malloc(64);
                if p.is_null() {
                    break;
                }
                got.push(p);
            }
            assert!(!got.is_empty(), "the budgeted superblock must be carved");
            for p in got {
                a.free(p); // no panic, accounting stays consistent
            }
            // Freed capacity is reusable without new OS calls.
            let p = a.malloc(64);
            assert!(!p.is_null());
            a.free(p);
        }
    }

    #[test]
    fn misuse_is_counted_not_fatal() {
        let a = Hoard::new(1);
        unsafe {
            let p = a.malloc(64);
            assert!(!p.is_null());
            // Misaligned interior pointer: same superblock, bad offset.
            a.free(p.add(8));
            assert_eq!(a.misuse_count(), 1);
            // The block itself is still valid and freeable.
            a.free(p);
            assert_eq!(a.misuse_count(), 1);
            // Freeing it again hits either the used==0 underflow check
            // (superblock drained to the pool) or the magic check.
            a.free(p);
            assert_eq!(a.misuse_count(), 2);
            // Foreign pointer whose 16 KiB region is mapped but carries
            // no hoard magic.
            let foreign = vec![0u8; 3 * SB_SIZE];
            let inside = ((foreign.as_ptr() as usize + SB_SIZE - 1) & !(SB_SIZE - 1)) + 64;
            a.free(inside as *mut u8);
            assert_eq!(a.misuse_count(), 3);
            // The allocator still works after every rejection.
            let q = a.malloc(64);
            assert!(!q.is_null());
            a.free(q);
        }
        assert_eq!(a.misuse_count(), 3);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn lock_counters_track_the_paper_claim() {
        // "Typically, malloc and free require one and two lock
        // acquisitions, respectively" — at minimum one per operation.
        let a = Hoard::new(1);
        unsafe {
            let blocks: Vec<*mut u8> = (0..5_000).map(|_| a.malloc(64)).collect();
            for p in blocks {
                a.free(p);
            }
        }
        let s = a.lock_stats();
        // Each of 5000 mallocs takes the heap lock; each free takes the
        // owner's lock (heap or global, depending on who owns the
        // superblock by then).
        assert!(s.heap_lock_acquisitions + s.global_lock_acquisitions >= 10_000, "got {s:?}");
        // 5000 frees of a single class empty the heap far past the
        // invariant: superblocks must have moved to the global heap.
        assert!(s.superblocks_moved_to_global >= 1, "got {s:?}");
        assert!(s.global_lock_acquisitions >= s.superblocks_moved_to_global);
    }

    #[test]
    fn direct_blocks_roundtrip() {
        let a = Hoard::new(2);
        unsafe {
            let p = a.malloc(100_000);
            assert!(!p.is_null());
            core::ptr::write_bytes(p, 0xCD, 100_000);
            a.free(p);
        }
        assert_eq!(a.stats().live_bytes, 0, "direct blocks must unmap on free");
    }
}
