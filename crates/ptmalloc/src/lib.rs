//! Ptmalloc-style multi-arena allocator baseline.
//!
//! From the paper's description (§2.2): "Ptmalloc, developed by Wolfram
//! Gloger and based on Doug Lea's dlmalloc sequential allocator, is part
//! of GNU glibc. It uses multiple arenas in order to reduce the adverse
//! effect of contention. The granularity of locking is the arena. If a
//! thread executing malloc finds an arena locked, it tries the next one.
//! If all arenas are found to be locked, the thread creates a new arena
//! ... Each thread keeps thread-specific information about the arena it
//! used in its last malloc. When a thread frees a chunk (block), it
//! returns the chunk to the arena from which the chunk was originally
//! allocated, and the thread must acquire that arena's lock."
//!
//! Every sentence above is implemented here, on top of
//! [`dlheap::SerialHeap`] (our dlmalloc). One representational
//! deviation: glibc finds a chunk's arena from its address; we store an
//! explicit 16-byte owner prefix in front of each block. The *locking
//! behaviour* — which lock is taken, when, and by whom — is identical,
//! and that is what the paper measures (including the pathologies it
//! observes: arena-hopping under contention, freeing to remote locked
//! arenas in Larson, and extra arenas beyond the thread count).

use dlheap::SerialHeap;
use malloc_api::{AllocStats, RawMalloc};
use osmem::{CountingSource, PageSource, SystemSource};
use malloc_api::sync::{Mutex, RwLock};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes prepended to each block to record the owning arena (keeps user
/// pointers 16-aligned).
const OWNER_PREFIX: usize = 16;

/// Salt for the owner-prefix checksum (the 64-bit golden-ratio
/// constant; any fixed odd mixer works).
const CHECKSUM_SALT: usize = 0x9E37_79B9_7F4A_7C15;

/// Checksum stored in the second prefix word: ties the owner pointer to
/// the block address. A double free fails this check reliably — the
/// first free hands the chunk to `dlheap`, whose bin links overwrite
/// both prefix words — and a mismatch is *counted and rejected* before
/// the owner pointer is ever dereferenced.
#[inline]
fn owner_checksum(owner: usize, base: usize) -> usize {
    owner ^ base ^ CHECKSUM_SALT
}

/// Arena-discipline counters (the `stats` feature). The paper's
/// ptmalloc pathologies are arena-hopping and arena blowup ("22 arenas
/// for 16 threads"), so we count try-lock scan steps, successful lock
/// acquisitions, and arena creations.
#[cfg(feature = "stats")]
#[derive(Debug, Default)]
struct ArenaCounters {
    lock_acquisitions: malloc_api::telemetry::Counter,
    arena_scans: malloc_api::telemetry::Counter,
    arena_creations: malloc_api::telemetry::Counter,
}

/// Snapshot of ptmalloc's arena-discipline counters.
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PtmallocStats {
    /// Arena mutex acquisitions (successful try-locks in the malloc
    /// scan, new-arena locks, and every free's owner lock).
    pub lock_acquisitions: u64,
    /// Try-lock attempts during the malloc arena scan, successful or
    /// not — each step past the first is an arena hop.
    pub arena_scans: u64,
    /// Arenas created because every existing arena was locked.
    pub arena_creations: u64,
}

/// One arena: a serial heap behind its own lock.
struct Arena<S: PageSource> {
    heap: Mutex<SerialHeap<S>>,
}

impl<S: PageSource> Arena<S> {
    fn new(source: Arc<S>) -> Arc<Self> {
        Arc::new(Arena { heap: Mutex::new(SerialHeap::new(source)) })
    }
}

thread_local! {
    /// Index of the arena this thread used for its last malloc.
    static LAST_ARENA: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The Ptmalloc-style allocator: arena list + per-thread affinity.
///
/// # Example
///
/// ```
/// use ptmalloc::Ptmalloc;
/// use malloc_api::RawMalloc;
///
/// let a = Ptmalloc::new();
/// unsafe {
///     let p = a.malloc(100);
///     assert!(!p.is_null());
///     a.free(p);
/// }
/// ```
pub struct Ptmalloc<S: PageSource = CountingSource<SystemSource>> {
    arenas: RwLock<Vec<Arc<Arena<S>>>>,
    source: Arc<S>,
    /// Frees rejected by the owner-prefix checksum (double frees and
    /// corrupted prefixes).
    misuse: AtomicU64,
    #[cfg(feature = "stats")]
    counters: ArenaCounters,
}

impl Ptmalloc<CountingSource<SystemSource>> {
    /// One initial arena over a counting system source.
    pub fn new() -> Self {
        Self::with_source(Arc::new(CountingSource::new(SystemSource::new())))
    }
}

impl Default for Ptmalloc<CountingSource<SystemSource>> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: PageSource + Send + Sync> Ptmalloc<S> {
    /// Builds the allocator over an injected page source.
    pub fn with_source(source: Arc<S>) -> Self {
        let main = Arena::new(Arc::clone(&source));
        Ptmalloc {
            arenas: RwLock::new(vec![main]),
            source,
            misuse: AtomicU64::new(0),
            #[cfg(feature = "stats")]
            counters: ArenaCounters::default(),
        }
    }

    /// Arena-discipline counters.
    ///
    /// Named `lock_stats` (not `stats`) so it does not shadow
    /// [`RawMalloc::stats`] on the concrete type.
    #[cfg(feature = "stats")]
    pub fn lock_stats(&self) -> PtmallocStats {
        PtmallocStats {
            lock_acquisitions: self.counters.lock_acquisitions.get(),
            arena_scans: self.counters.arena_scans.get(),
            arena_creations: self.counters.arena_creations.get(),
        }
    }

    /// Number of arenas created so far. The paper reports this as a
    /// symptom: "Ptmalloc creates more arenas than the number of
    /// threads, e.g., 22 arenas for 16 threads".
    pub fn arena_count(&self) -> usize {
        self.arenas.read().len()
    }

    /// The page source (for stats).
    pub fn source(&self) -> &Arc<S> {
        &self.source
    }

    /// Frees rejected because the owner-prefix checksum did not match
    /// (double frees, foreign pointers, corrupted prefixes).
    pub fn misuse_count(&self) -> u64 {
        self.misuse.load(Ordering::Relaxed)
    }

    /// Allocates via the paper's arena discipline: last-used arena
    /// first, then try-lock scan, then a fresh arena.
    unsafe fn arena_malloc(&self, size: usize) -> *mut u8 {
        let total = size.saturating_add(OWNER_PREFIX);
        // 1. The thread's preferred arena (uncontended fast path).
        let preferred = LAST_ARENA.try_with(|c| c.get()).unwrap_or(usize::MAX);
        {
            let arenas = self.arenas.read();
            let n = arenas.len();
            let start = if preferred < n { preferred } else { 0 };
            // 2. Try-lock scan starting at the preferred arena: "If a
            //    thread executing malloc finds an arena locked, it tries
            //    the next one."
            for step in 0..n {
                let idx = (start + step) % n;
                #[cfg(feature = "stats")]
                self.counters.arena_scans.inc();
                if let Some(mut heap) = arenas[idx].heap.try_lock() {
                    #[cfg(feature = "stats")]
                    self.counters.lock_acquisitions.inc();
                    let p = unsafe { heap.malloc(total) };
                    drop(heap);
                    if p.is_null() {
                        return core::ptr::null_mut();
                    }
                    let _ = LAST_ARENA.try_with(|c| c.set(idx));
                    return unsafe { self.finish(p, &arenas[idx]) };
                }
            }
        }
        // 3. "If all arenas are found to be locked, the thread creates a
        //    new arena to satisfy its malloc and adds the new arena to
        //    the main list of arenas."
        let arena = Arena::new(Arc::clone(&self.source));
        let idx;
        {
            let mut arenas = self.arenas.write();
            idx = arenas.len();
            arenas.push(Arc::clone(&arena));
        }
        let _ = LAST_ARENA.try_with(|c| c.set(idx));
        #[cfg(feature = "stats")]
        {
            self.counters.arena_creations.inc();
            self.counters.lock_acquisitions.inc();
        }
        let p = unsafe { arena.heap.lock().malloc(total) };
        if p.is_null() {
            return core::ptr::null_mut();
        }
        unsafe { self.finish(p, &arena) }
    }

    /// Stamps the owner prefix and returns the user pointer.
    ///
    /// The prefix is a plain pointer, not a refcount: the arena list
    /// holds every arena's `Arc` until the allocator itself drops, and
    /// `free` takes `&self`, so the owner outlives every block.
    unsafe fn finish(&self, p: *mut u8, arena: &Arc<Arena<S>>) -> *mut u8 {
        unsafe {
            let owner = Arc::as_ptr(arena) as usize;
            (p as *mut usize).write(owner);
            (p as *mut usize).add(1).write(owner_checksum(owner, p as usize));
            p.add(OWNER_PREFIX)
        }
    }

    /// Makes this allocator fork-safe for the lifetime of the returned
    /// guard, by registering [`malloc_api::procfork`] hooks that hold
    /// every arena lock across `fork`: prepare takes the arena-list
    /// write lock, then each arena's heap mutex in index order; parent
    /// and child both release them. Without this, a fork racing another
    /// thread's malloc snapshots an arena locked by a thread that does
    /// not exist in the child, and the child's next free to that arena
    /// blocks forever (malloc would hop past it, but free must take the
    /// owner's lock).
    ///
    /// This order cannot deadlock against the hot paths: malloc holds
    /// the list *read* lock and only ever `try_lock`s arena heaps (it
    /// never blocks on one while holding the list), and the new-arena
    /// path takes the write lock while holding no arena mutex, locking
    /// the new arena's heap only after dropping it.
    ///
    /// Only forks that run the procfork hook protocol
    /// ([`malloc_api::procfork::fork`], or raw `fork(2)` after
    /// [`malloc_api::procfork::install`]) are covered. The prepare hook
    /// allocates (a `Vec` of guards); ptmalloc is a baseline, never the
    /// Rust global allocator, so that is safe.
    pub fn atfork_guard(&self) -> PtmallocAtforkGuard<'_, S>
    where
        S: 'static,
    {
        let stash = Box::into_raw(Box::new(PtmallocAtforkStash {
            alloc: self as *const Ptmalloc<S>,
            guards: core::cell::UnsafeCell::new(None),
        }));
        let token = malloc_api::procfork::register(malloc_api::procfork::HookSet {
            prepare: Some(ptmalloc_atfork_prepare::<S>),
            parent: Some(ptmalloc_atfork_release::<S>),
            child: Some(ptmalloc_atfork_release::<S>),
            data: stash as usize,
        });
        PtmallocAtforkGuard { token, stash, _alloc: core::marker::PhantomData }
    }
}

/// Everything the forking thread holds across `fork`. Field order is
/// drop order: the arena heap guards release before the list write
/// guard, so no thread can observe a grown list whose arenas are still
/// locked by the (possibly gone) forking thread.
struct PtmallocForkGuards<S: PageSource + 'static> {
    _heaps: Vec<malloc_api::sync::MutexGuard<'static, SerialHeap<S>>>,
    _list: malloc_api::sync::RwLockWriteGuard<'static, Vec<Arc<Arena<S>>>>,
}

/// Hook-side state of one [`Ptmalloc::atfork_guard`] registration. Only
/// the forking thread touches `guards`, under the procfork registry
/// lock.
struct PtmallocAtforkStash<S: PageSource + 'static> {
    alloc: *const Ptmalloc<S>,
    guards: core::cell::UnsafeCell<Option<PtmallocForkGuards<S>>>,
}

unsafe fn ptmalloc_atfork_prepare<S: PageSource + 'static>(data: usize) {
    let stash = unsafe { &*(data as *const PtmallocAtforkStash<S>) };
    let a = unsafe { &*stash.alloc };
    // List write lock first: freezes the arena set and excludes the
    // new-arena path (which never holds an arena mutex while waiting
    // here).
    let list = unsafe {
        core::mem::transmute::<
            malloc_api::sync::RwLockWriteGuard<'_, Vec<Arc<Arena<S>>>>,
            malloc_api::sync::RwLockWriteGuard<'static, Vec<Arc<Arena<S>>>>,
        >(a.arenas.write())
    };
    // Then every arena heap, in index order. Lifetime erasure only:
    // released by `ptmalloc_atfork_release` on this same thread, and
    // the arenas outlive the registration (the list holds their Arcs
    // and the allocator outlives the guard).
    let mut heaps = Vec::with_capacity(list.len());
    for arena in list.iter() {
        heaps.push(unsafe {
            core::mem::transmute::<
                malloc_api::sync::MutexGuard<'_, SerialHeap<S>>,
                malloc_api::sync::MutexGuard<'static, SerialHeap<S>>,
            >(arena.heap.lock())
        });
    }
    unsafe { *stash.guards.get() = Some(PtmallocForkGuards { _heaps: heaps, _list: list }) };
}

/// Parent and child both just unlock: the forking thread holds every
/// lock, so in both processes the arenas are consistent and the locks
/// are ours to release.
unsafe fn ptmalloc_atfork_release<S: PageSource + 'static>(data: usize) {
    let stash = unsafe { &*(data as *const PtmallocAtforkStash<S>) };
    drop(unsafe { (*stash.guards.get()).take() });
}

/// RAII registration handle returned by [`Ptmalloc::atfork_guard`];
/// unregisters the hooks (and frees the hook stash) on drop.
pub struct PtmallocAtforkGuard<'a, S: PageSource + 'static> {
    token: Option<malloc_api::procfork::HookToken>,
    stash: *mut PtmallocAtforkStash<S>,
    _alloc: core::marker::PhantomData<&'a Ptmalloc<S>>,
}

impl<S: PageSource + 'static> PtmallocAtforkGuard<'_, S> {
    /// False when the procfork registry was full and no hooks could be
    /// installed (the guard is inert; fork safety is not provided).
    pub fn is_armed(&self) -> bool {
        self.token.is_some()
    }
}

impl<S: PageSource + 'static> Drop for PtmallocAtforkGuard<'_, S> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            // Blocks until any in-flight fork's hooks have run, so the
            // stash is quiescent when freed.
            malloc_api::procfork::unregister(token);
        }
        drop(unsafe { Box::from_raw(self.stash) });
    }
}

unsafe impl<S: PageSource + Send + Sync> RawMalloc for Ptmalloc<S> {
    unsafe fn malloc(&self, size: usize) -> *mut u8 {
        unsafe { self.arena_malloc(size) }
    }

    unsafe fn free(&self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        unsafe {
            let base = ptr.sub(OWNER_PREFIX);
            let owner = (base as *const usize).read();
            let checksum = (base as *const usize).add(1).read();
            // Validate the prefix *before* dereferencing the owner: a
            // stale or corrupted prefix would otherwise be followed as a
            // pointer into a lock.
            if checksum != owner_checksum(owner, base as usize) {
                self.misuse.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let owner = owner as *const Arena<S>;
            // "the thread must acquire that arena's lock" — a remote
            // free blocks on the owner's lock, the contention source the
            // paper measures in Larson and producer-consumer.
            #[cfg(feature = "stats")]
            self.counters.lock_acquisitions.inc();
            (*owner).heap.lock().free(base);
        }
    }

    fn name(&self) -> &str {
        "ptmalloc"
    }

    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        if align <= OWNER_PREFIX {
            unsafe { self.malloc(size) }
        } else {
            core::ptr::null_mut()
        }
    }

    fn stats(&self) -> AllocStats {
        self.source.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malloc_api::testkit;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Barrier;

    #[test]
    fn full_conformance_battery() {
        let a = Arc::new(Ptmalloc::new());
        testkit::check_all(a);
    }

    #[test]
    fn starts_with_one_arena() {
        let a = Ptmalloc::new();
        assert_eq!(a.arena_count(), 1);
        unsafe {
            let p = a.malloc(64);
            a.free(p);
        }
        assert_eq!(a.arena_count(), 1, "uncontended use must not spawn arenas");
    }

    #[test]
    fn contention_creates_arenas() {
        // Hold the only arena's lock hostage; a malloc from another
        // thread must create a second arena instead of blocking.
        let a = Arc::new(Ptmalloc::new());
        let hold = {
            let arenas = a.arenas.read();
            // Leak a guard by locking and forgetting: simulate a slow
            // holder via a scoped thread instead.
            Arc::clone(&arenas[0])
        };
        let barrier = Arc::new(Barrier::new(2));
        let release = Arc::new(AtomicBool::new(false));
        let holder = {
            let barrier = Arc::clone(&barrier);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                let _guard = hold.heap.lock();
                barrier.wait(); // lock is held
                while !release.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            })
        };
        barrier.wait();
        let p = unsafe { a.malloc(64) };
        assert!(!p.is_null());
        assert_eq!(a.arena_count(), 2, "malloc under total contention must add an arena");
        release.store(true, Ordering::Release);
        holder.join().unwrap();
        unsafe { a.free(p) };
    }

    #[test]
    fn remote_free_returns_to_owner_arena() {
        let a = Arc::new(Ptmalloc::new());
        let p = unsafe { a.malloc(128) } as usize;
        let a2 = Arc::clone(&a);
        // Free from another thread: must succeed and route to arena 0.
        std::thread::spawn(move || unsafe { a2.free(p as *mut u8) }).join().unwrap();
        assert_eq!(a.arena_count(), 1);
    }

    #[test]
    fn thread_affinity_is_sticky() {
        let a = Ptmalloc::new();
        unsafe {
            let p1 = a.malloc(64);
            let p2 = a.malloc(64);
            // Same thread, both from arena 0 — freeing must not panic
            // and the arena count stays 1.
            a.free(p1);
            a.free(p2);
        }
        assert_eq!(a.arena_count(), 1);
    }

    #[test]
    fn double_free_is_rejected_by_checksum() {
        let a = Ptmalloc::new();
        unsafe {
            let p = a.malloc(64);
            assert!(!p.is_null());
            a.free(p);
            // The first free handed the chunk to dlheap, whose bin links
            // overwrote both prefix words; the second free must fail the
            // checksum and be counted, not followed into a stale arena.
            a.free(p);
            assert_eq!(a.misuse_count(), 1);
            // The heap stays usable afterwards.
            let q = a.malloc(64);
            assert!(!q.is_null());
            a.free(q);
        }
        assert_eq!(a.misuse_count(), 1);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn arena_counters_track_the_discipline() {
        let a = Arc::new(Ptmalloc::new());
        unsafe {
            let p = a.malloc(64);
            a.free(p);
        }
        let s = a.lock_stats();
        // One malloc (scan step 0 succeeds) + one free: two lock
        // acquisitions, one scan step, no new arenas.
        assert_eq!(s.lock_acquisitions, 2, "got {s:?}");
        assert_eq!(s.arena_scans, 1, "got {s:?}");
        assert_eq!(s.arena_creations, 0, "got {s:?}");

        // Hold the only arena's lock: the next malloc must scan past it
        // and create a second arena.
        let hold = Arc::clone(&a.arenas.read()[0]);
        let barrier = Arc::new(Barrier::new(2));
        let release = Arc::new(AtomicBool::new(false));
        let holder = {
            let barrier = Arc::clone(&barrier);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                let _guard = hold.heap.lock();
                barrier.wait();
                while !release.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            })
        };
        barrier.wait();
        let p = unsafe { a.malloc(64) };
        assert!(!p.is_null());
        release.store(true, Ordering::Release);
        holder.join().unwrap();
        let s = a.lock_stats();
        assert_eq!(s.arena_creations, 1, "got {s:?}");
        assert!(s.arena_scans >= 2, "the locked arena must count as a scan step: {s:?}");
        unsafe { a.free(p) };
    }

    #[test]
    fn exhausted_source_yields_null_not_panic() {
        use osmem::FlakySource;

        // A source with zero budget: every malloc size must come back
        // null — small (via arena grow) and huge (direct mmap) alike.
        let dead = Arc::new(FlakySource::new(SystemSource::new(), 0));
        let a = Ptmalloc::with_source(Arc::clone(&dead));
        unsafe {
            assert!(a.malloc(64).is_null());
            assert!(a.malloc(4 << 20).is_null());
        }
        assert!(dead.denials() >= 2, "both paths must have hit the source");

        // A budget of one segment: allocate until it runs dry, then
        // every free must still succeed and the memory stays reusable
        // without any further OS grant.
        let tight = Arc::new(FlakySource::new(SystemSource::new(), 1));
        let a = Ptmalloc::with_source(Arc::clone(&tight));
        let mut live = Vec::new();
        unsafe {
            loop {
                let p = a.malloc(4096);
                if p.is_null() {
                    break;
                }
                live.push(p as usize);
            }
            assert!(!live.is_empty(), "one segment must serve some blocks");
            assert!(tight.denials() > 0);
            for &p in &live {
                a.free(p as *mut u8);
            }
            // Coalesced memory is recycled without touching the source.
            let before = tight.denials();
            let p = a.malloc(4096);
            assert!(!p.is_null());
            assert_eq!(tight.denials(), before);
            a.free(p);
        }
    }
    #[test]
    fn atfork_guard_registers_and_unregisters() {
        let a = Ptmalloc::new();
        let before = malloc_api::procfork::registered_count();
        let g = a.atfork_guard();
        assert!(g.is_armed());
        assert_eq!(malloc_api::procfork::registered_count(), before + 1);
        drop(g);
        assert_eq!(malloc_api::procfork::registered_count(), before);
    }

}
