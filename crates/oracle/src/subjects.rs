//! The differential-harness registry: every allocator a trace can
//! replay against, constructed fresh by name.
//!
//! "Differential" here means the same trace runs against all four
//! allocators (plus hardened lfmalloc) and the oracle must stay silent
//! on each — any allocator-specific violation localizes the bug to
//! that allocator rather than to the trace or the harness.

use crate::replay::{replay, ReplayOutcome};
use crate::trace::Trace;
use dlheap::LockedHeap;
use hoard::Hoard;
use lfmalloc::{Config, Hardening, LfMalloc};
use malloc_api::RawMalloc;
use osmem::SystemSource;
use ptmalloc::Ptmalloc;

/// Names [`subject`] accepts; the canonical differential set.
pub const SUBJECT_NAMES: [&str; 5] =
    ["lfmalloc", "lfmalloc-hardened", "hoard", "ptmalloc", "dlheap"];

enum SubjectKind {
    Lf(LfMalloc<SystemSource>),
    Hoard(Hoard),
    Ptmalloc(Ptmalloc),
    Dlheap(LockedHeap),
}

/// One freshly constructed allocator under test.
pub struct Subject {
    name: &'static str,
    kind: SubjectKind,
}

impl Subject {
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The allocator as a trait object the replayer accepts.
    pub fn as_raw(&self) -> &dyn RawMalloc {
        match &self.kind {
            SubjectKind::Lf(a) => a,
            SubjectKind::Hoard(a) => a,
            SubjectKind::Ptmalloc(a) => a,
            SubjectKind::Dlheap(a) => a,
        }
    }

    /// Replays `trace` against this subject.
    pub fn replay(&self, trace: &Trace) -> ReplayOutcome {
        replay(self.as_raw(), trace)
    }

    /// The allocator's own metadata audit, for subjects that have one
    /// (`None` means "no audit facility, nothing to check").
    pub fn audit_clean(&self) -> Option<bool> {
        match &self.kind {
            SubjectKind::Lf(a) => Some(a.audit().is_clean()),
            _ => None,
        }
    }
}

/// Builds a fresh allocator by name (see [`SUBJECT_NAMES`]).
pub fn subject(name: &str) -> Option<Subject> {
    let kind = match name {
        "lfmalloc" => SubjectKind::Lf(LfMalloc::new_default()),
        "lfmalloc-hardened" => SubjectKind::Lf(LfMalloc::with_config(
            Config::detect().with_hardening(Hardening::Detect),
        )),
        "hoard" => SubjectKind::Hoard(Hoard::new_detected()),
        "ptmalloc" => SubjectKind::Ptmalloc(Ptmalloc::new()),
        "dlheap" => SubjectKind::Dlheap(LockedHeap::new()),
        _ => return None,
    };
    let name = SUBJECT_NAMES.iter().find(|n| **n == name)?;
    Some(Subject { name, kind })
}

/// Fresh instances of the whole differential set.
pub fn all_subjects() -> Vec<Subject> {
    SUBJECT_NAMES.iter().map(|n| subject(n).expect("registered name")).collect()
}

/// Convenience: fresh subject by name, replay, and (where available)
/// a post-run audit folded into the outcome as an extra violation
/// check. Panics on an unknown name.
pub fn replay_named(name: &str, trace: &Trace) -> (ReplayOutcome, Option<bool>) {
    let s = subject(name).unwrap_or_else(|| panic!("unknown subject {name:?}"));
    let out = s.replay(trace);
    let audit = s.audit_clean();
    (out, audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_constructs() {
        for name in SUBJECT_NAMES {
            let s = subject(name).expect(name);
            assert_eq!(s.name(), name);
            unsafe {
                let p = s.as_raw().malloc(64);
                assert!(!p.is_null());
                s.as_raw().free(p);
            }
        }
        assert!(subject("nonesuch").is_none());
    }

    #[test]
    fn short_trace_replays_on_all_subjects() {
        let trace = Trace::generate(7, 2, 120);
        for s in all_subjects() {
            let out = s.replay(&trace);
            assert!(out.is_clean(), "{}: {:?}", s.name(), out.violations);
            assert_ne!(s.audit_clean(), Some(false), "{} audit", s.name());
        }
    }
}
