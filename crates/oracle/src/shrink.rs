//! Delta-debugging trace reduction (ddmin, Zeller & Hildebrandt).
//!
//! Given a failing trace and a predicate "does this trace still fail?",
//! repeatedly tries removing chunks of ops — halving granularity on
//! failure to make progress — then finishes with a per-op elimination
//! pass and a thread-count trim. Traces are subset-closed under the
//! replayer (ops on dead slots are no-ops), so every candidate is well
//! formed and the predicate is the only arbiter.
//!
//! The predicate re-runs the replayer against a *fresh* allocator each
//! attempt; with seeded failpoint plans re-armed per replay, "still
//! fails" is deterministic. Note the predicate is "any violation", not
//! "the identical violation": removing ops shifts failpoint hit counts,
//! so a candidate may fail *differently* — ddmin keeps it either way,
//! which only ever makes the repro smaller.

use crate::trace::Trace;

/// Hard cap on predicate invocations so a pathological trace cannot
/// spin the shrinker forever.
const MAX_ATTEMPTS: usize = 2000;

/// Minimizes `trace` under `still_fails`, which must be true for
/// `trace` itself. Returns the smallest failing trace found, with
/// `expect` set to [`Violation`](crate::Expectation::Violation).
pub fn shrink<F: FnMut(&Trace) -> bool>(trace: &Trace, mut still_fails: F) -> Trace {
    let mut best = trace.clone();
    let mut attempts = 0usize;
    let mut try_candidate = |cand: &Trace, attempts: &mut usize| -> bool {
        if *attempts >= MAX_ATTEMPTS {
            return false;
        }
        *attempts += 1;
        still_fails(cand)
    };

    // Phase 1: ddmin chunk removal over the op list.
    let mut granularity = 2usize;
    while best.ops.len() >= 2 {
        let chunk = best.ops.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < best.ops.len() {
            let end = (start + chunk).min(best.ops.len());
            let mut cand = best.clone();
            cand.ops.drain(start..end);
            if !cand.ops.is_empty() && try_candidate(&cand, &mut attempts) {
                best = cand;
                reduced = true;
                // Same start now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if reduced {
            granularity = granularity.saturating_sub(1).max(2);
        } else if granularity >= best.ops.len() || attempts >= MAX_ATTEMPTS {
            break;
        } else {
            granularity = (granularity * 2).min(best.ops.len());
        }
    }

    // Phase 2: single-op elimination until a fixed point.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < best.ops.len() {
            if best.ops.len() == 1 {
                break;
            }
            let mut cand = best.clone();
            cand.ops.remove(i);
            if try_candidate(&cand, &mut attempts) {
                best = cand;
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any || attempts >= MAX_ATTEMPTS {
            break;
        }
    }

    // Phase 3: drop threads that no longer own any ops.
    let max_thread = best.ops.iter().map(|e| e.thread).max().unwrap_or(0);
    if max_thread + 1 < best.threads {
        let mut cand = best.clone();
        cand.threads = max_thread + 1;
        if try_candidate(&cand, &mut attempts) {
            best = cand;
        }
    }

    best.expect = crate::Expectation::Violation;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Expectation, TraceEvent, TraceOp};

    /// Synthetic predicate: "fails" iff ops for slots 3 AND 7 are both
    /// present — the minimal repro is exactly those two ops.
    fn fails(t: &Trace) -> bool {
        let has = |s: u64| t.ops.iter().any(|e| e.op.slot() == s);
        has(3) && has(7)
    }

    #[test]
    fn shrinks_to_the_two_relevant_ops() {
        let mut trace = Trace::empty("test", 0);
        trace.threads = 4;
        for seq in 0..100u64 {
            trace.ops.push(TraceEvent {
                seq,
                thread: (seq % 4) as u32,
                op: TraceOp::Malloc { slot: seq, size: 64 },
            });
        }
        assert!(fails(&trace));
        let small = shrink(&trace, fails);
        assert_eq!(small.ops.len(), 2, "minimal repro is slots 3 and 7: {:?}", small.ops);
        assert!(fails(&small));
        assert_eq!(small.expect, Expectation::Violation);
        assert!(small.threads <= 4);
    }

    #[test]
    fn single_op_trace_survives() {
        let mut trace = Trace::empty("test", 0);
        trace.ops.push(TraceEvent { seq: 0, thread: 0, op: TraceOp::Free { slot: 0 } });
        let small = shrink(&trace, |_| true);
        assert_eq!(small.ops.len(), 1);
    }
}
