//! The lock-free shadow map: live-block bookkeeping the oracle keeps
//! *beside* the allocator under test.
//!
//! A fixed-capacity open-addressing hash table keyed by user pointer.
//! Each slot is one `AtomicUsize` key plus an adjacent metadata cell;
//! the key encodes the slot's lifecycle:
//!
//! | key value  | meaning                                            |
//! |------------|----------------------------------------------------|
//! | `0`        | empty, never used                                  |
//! | `1`        | tombstone (a block lived here and was freed)       |
//! | `ptr \| 1` | transient: an inserter/remover owns the metadata   |
//! | `ptr`      | live block at `ptr`                                |
//!
//! User pointers are at least 8-byte aligned, so `ptr | 1` can never
//! collide with a live key or the tombstone. Inserters claim a reusable
//! slot by CAS to `ptr | 1`, write the metadata, then publish with a
//! release store of `ptr`; removers do the reverse. The map never
//! allocates after construction and never blocks, so it can sit on the
//! malloc path of the allocator it is checking without distorting the
//! interleavings under test.
//!
//! Duplicate detection: an insert first scans the whole probe chain for
//! `ptr` (catching a double-hand-out of a still-live block), claims the
//! first reusable slot, publishes, then rescans — so when two threads
//! are handed the same block *concurrently*, at least one of the
//! inserts observes the other. Overlap of distinct blocks is not
//! checked per-op (that needs a global ordered view); it is checked by
//! [`ShadowMap::snapshot`]-based sweeps at quiescent points — a
//! concurrent sweep could tear between a free and a reuse and report a
//! false overlap, so [`crate::wrapper::OracleMalloc::verify_all`] is
//! documented quiescent-only.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicUsize, Ordering};

const EMPTY: usize = 0;
const TOMB: usize = 1;

/// Metadata mirrored for one live block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowBlock {
    /// Requested (user) size in bytes.
    pub size: usize,
    /// Alignment the caller asked for.
    pub align: usize,
    /// Seed of the fill pattern currently written over the block
    /// (meaningful only when the wrapper runs with fill checking).
    pub nonce: u64,
    /// Logical slot id, for trace recording; `u64::MAX` when untracked.
    pub slot: u64,
}

struct Slot {
    key: AtomicUsize,
    meta: UnsafeCell<ShadowBlock>,
}

/// Why an insert was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertError {
    /// The pointer is already live in the map: the allocator handed the
    /// same block out twice.
    Duplicate(ShadowBlock),
    /// The table is full — an infrastructure limit, not a heap bug.
    Full,
}

/// The lock-free shadow map. See the module docs for the protocol.
pub struct ShadowMap {
    slots: Box<[Slot]>,
    mask: usize,
    /// Approximate live count (maintained with relaxed increments).
    len: AtomicUsize,
}

// The UnsafeCell metadata is only touched by the thread that holds the
// slot's transient `ptr | 1` lock, established by CAS.
unsafe impl Send for ShadowMap {}
unsafe impl Sync for ShadowMap {}

impl ShadowMap {
    /// Builds a map with capacity for roughly `capacity` live blocks
    /// (rounded up to a power of two, minimum 64). The map itself
    /// allocates through the Rust global allocator — the oracle is test
    /// infrastructure and is never installed as the global allocator.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(64).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|_| Slot {
                key: AtomicUsize::new(EMPTY),
                meta: UnsafeCell::new(ShadowBlock { size: 0, align: 0, nonce: 0, slot: 0 }),
            })
            .collect();
        ShadowMap { slots: slots.into_boxed_slice(), mask: cap - 1, len: AtomicUsize::new(0) }
    }

    fn hash(&self, ptr: usize) -> usize {
        // splitmix64 finalizer over the pointer sans alignment bits.
        let mut z = (ptr >> 3) as u64;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize & self.mask
    }

    /// Scans `ptr`'s whole probe chain (bounded by table size) for a
    /// live or in-flight entry with this key.
    fn find_live(&self, ptr: usize) -> Option<ShadowBlock> {
        let start = self.hash(ptr);
        for i in 0..=self.mask {
            let slot = &self.slots[(start + i) & self.mask];
            let key = slot.key.load(Ordering::Acquire);
            if key == ptr || key == (ptr | 1) {
                // In-flight metadata may be mid-write; the caller only
                // uses this for violation reports, where a torn size is
                // acceptable (the *presence* is the finding).
                return Some(unsafe { *slot.meta.get() });
            }
            if key == EMPTY {
                return None;
            }
        }
        None
    }

    /// Registers a freshly handed-out block.
    ///
    /// `Err(Duplicate)` means `ptr` was already live — the allocator
    /// double-handed-out a block. `Err(Full)` means the table is out of
    /// room (raise the wrapper's capacity).
    pub fn insert(&self, ptr: usize, meta: ShadowBlock) -> Result<(), InsertError> {
        debug_assert!(ptr & 1 == 0 && ptr > TOMB);
        if let Some(existing) = self.find_live(ptr) {
            return Err(InsertError::Duplicate(existing));
        }
        let start = self.hash(ptr);
        for i in 0..=self.mask {
            let slot = &self.slots[(start + i) & self.mask];
            let key = slot.key.load(Ordering::Acquire);
            if key == ptr || key == (ptr | 1) {
                return Err(InsertError::Duplicate(unsafe { *slot.meta.get() }));
            }
            if key == EMPTY || key == TOMB {
                if slot
                    .key
                    .compare_exchange(key, ptr | 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    unsafe { *slot.meta.get() = meta };
                    slot.key.store(ptr, Ordering::Release);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    // Rescan: if another thread was handed the same
                    // pointer concurrently and published elsewhere in
                    // the chain, one of us must see the other.
                    if self.count_live(ptr) > 1 {
                        return Err(InsertError::Duplicate(meta));
                    }
                    return Ok(());
                }
                // Lost the slot to a concurrent insert; re-examine it.
                continue;
            }
        }
        Err(InsertError::Full)
    }

    /// Number of distinct slots currently holding `ptr` (live or
    /// in-flight). More than one means a double-hand-out slipped past
    /// both inserters' pre-scans.
    fn count_live(&self, ptr: usize) -> usize {
        let start = self.hash(ptr);
        let mut n = 0;
        for i in 0..=self.mask {
            let slot = &self.slots[(start + i) & self.mask];
            let key = slot.key.load(Ordering::Acquire);
            if key == ptr || key == (ptr | 1) {
                n += 1;
            } else if key == EMPTY {
                break;
            }
        }
        n
    }

    /// Unregisters a block at free/realloc time, returning its
    /// metadata. `None` means the pointer was not live: a double free
    /// or a free of a pointer the wrapper never saw.
    pub fn remove(&self, ptr: usize) -> Option<ShadowBlock> {
        debug_assert!(ptr & 1 == 0 && ptr > TOMB);
        let start = self.hash(ptr);
        for i in 0..=self.mask {
            let slot = &self.slots[(start + i) & self.mask];
            let key = slot.key.load(Ordering::Acquire);
            if key == ptr {
                if slot
                    .key
                    .compare_exchange(ptr, ptr | 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    let meta = unsafe { *slot.meta.get() };
                    slot.key.store(TOMB, Ordering::Release);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    return Some(meta);
                }
                // A racing remover got it first: that is a double free
                // happening *right now*; fall through and keep probing
                // (we will hit EMPTY and report NotFound).
                continue;
            }
            if key == EMPTY {
                return None;
            }
        }
        None
    }

    /// Approximate number of live blocks.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no blocks are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live `(ptr, meta)` pairs, sorted by pointer.
    ///
    /// Only meaningful at a quiescent point (no concurrent map
    /// mutations); a concurrent snapshot can tear across a free+reuse
    /// and must not be fed to the overlap sweep.
    pub fn snapshot(&self) -> Vec<(usize, ShadowBlock)> {
        let mut v: Vec<(usize, ShadowBlock)> = self
            .slots
            .iter()
            .filter_map(|slot| {
                let key = slot.key.load(Ordering::Acquire);
                if key > TOMB && key & 1 == 0 {
                    Some((key, unsafe { *slot.meta.get() }))
                } else {
                    None
                }
            })
            .collect();
        v.sort_unstable_by_key(|(p, _)| *p);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(size: usize) -> ShadowBlock {
        ShadowBlock { size, align: 8, nonce: 1, slot: 0 }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let m = ShadowMap::new(64);
        assert!(m.insert(0x1000, meta(32)).is_ok());
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(0x1000), Some(meta(32)));
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_insert_is_detected() {
        let m = ShadowMap::new(64);
        m.insert(0x2000, meta(16)).unwrap();
        match m.insert(0x2000, meta(16)) {
            Err(InsertError::Duplicate(existing)) => assert_eq!(existing.size, 16),
            other => panic!("expected Duplicate, got {other:?}"),
        }
    }

    #[test]
    fn remove_of_unknown_pointer_is_none() {
        let m = ShadowMap::new(64);
        m.insert(0x3000, meta(8)).unwrap();
        assert_eq!(m.remove(0x3008), None);
        assert_eq!(m.remove(0x3000), Some(meta(8)));
        assert_eq!(m.remove(0x3000), None, "double free must not find the tombstone");
    }

    #[test]
    fn tombstones_are_reused_and_chains_stay_findable() {
        let m = ShadowMap::new(64);
        // Exercise collision chains + tombstone reuse far past capacity.
        for round in 0..10usize {
            let base = 0x10_0000 + round * 0x40;
            for k in 0..50usize {
                m.insert(base + k * 8, meta(k + 1)).unwrap();
            }
            for k in 0..50usize {
                assert_eq!(m.remove(base + k * 8).unwrap().size, k + 1);
            }
            assert!(m.is_empty());
        }
    }

    #[test]
    fn full_table_reports_full() {
        let m = ShadowMap::new(64); // rounds to 64 slots
        let mut inserted = 0;
        for k in 0..200usize {
            match m.insert(0x8000 + k * 8, meta(8)) {
                Ok(()) => inserted += 1,
                Err(InsertError::Full) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(inserted, 64);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let m = ShadowMap::new(64);
        for ptr in [0x5000usize, 0x1000, 0x9000, 0x3000] {
            m.insert(ptr, meta(ptr & 0xFFFF)).unwrap();
        }
        let snap = m.snapshot();
        let ptrs: Vec<usize> = snap.iter().map(|(p, _)| *p).collect();
        assert_eq!(ptrs, [0x1000, 0x3000, 0x5000, 0x9000]);
    }

    #[test]
    fn concurrent_churn_stays_consistent() {
        let m = std::sync::Arc::new(ShadowMap::new(1 << 12));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    // Disjoint pointer ranges per thread: all inserts
                    // must succeed, all removes must find their block.
                    let base = 0x100_0000 * (t as usize + 1);
                    for round in 0..50 {
                        for k in 0..100usize {
                            m.insert(base + k * 8, meta(round + 1)).unwrap();
                        }
                        for k in 0..100usize {
                            assert_eq!(m.remove(base + k * 8).unwrap().size, round + 1);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(m.is_empty());
    }
}
