//! The portable trace format: per-thread op logs with a global order,
//! failpoint plans, and the scenario seed — everything the replayer
//! needs to re-execute a heap history deterministically.
//!
//! A trace is plain text, one line per item, so minimized repros are
//! reviewable diffs in `tests/corpus/`:
//!
//! ```text
//! # oracle-trace v1
//! allocator lfmalloc
//! threads 2
//! seed 0x2a
//! expect clean
//! fp alloc.double_handout retry nth:7 budget=1
//! op 0 t=0 malloc slot=3 size=128
//! op 1 t=1 calloc slot=9 count=4 size=32
//! op 2 t=0 aligned slot=4 size=64 align=64
//! op 3 t=1 realloc slot=9 size=256
//! op 4 t=0 free slot=3
//! ```
//!
//! `op <seq>` is the recorded global linearization: the replayer
//! executes ops strictly in `seq` order, each on its owning thread
//! (`t=`). `slot=` is a logical block id — traces never contain raw
//! addresses, which is what makes them portable across allocators and
//! runs. Ops naming a slot that is not live are no-ops under replay, so
//! any subset of a trace is itself a valid trace (the property the
//! delta-debugging shrinker relies on).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One heap operation on a logical slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    Malloc { slot: u64, size: usize },
    Calloc { slot: u64, count: usize, size: usize },
    Aligned { slot: u64, size: usize, align: usize },
    Realloc { slot: u64, size: usize },
    Free { slot: u64 },
}

impl TraceOp {
    /// The logical slot this op targets.
    pub fn slot(&self) -> u64 {
        match *self {
            TraceOp::Malloc { slot, .. }
            | TraceOp::Calloc { slot, .. }
            | TraceOp::Aligned { slot, .. }
            | TraceOp::Realloc { slot, .. }
            | TraceOp::Free { slot } => slot,
        }
    }
}

/// One op with its global order and owning thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global linearization index (dense order is not required; the
    /// replayer sorts).
    pub seq: u64,
    /// Owning thread, `0..threads`.
    pub thread: u32,
    pub op: TraceOp,
}

/// Mirror of `malloc_api::failpoints::FpAction` that exists (and
/// parses) without the `failpoints` feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpActionSpec {
    Yield,
    Delay(u32),
    Retry,
    Kill,
}

/// Mirror of `malloc_api::failpoints::FpTrigger`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpTriggerSpec {
    Always,
    Nth(u64),
    Chance(u16),
}

/// One armed failpoint in the trace's scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FpPlan {
    pub site: String,
    pub action: FpActionSpec,
    pub trigger: FpTriggerSpec,
    /// Fire budget; `None` is unlimited.
    pub budget: Option<u64>,
}

/// What a checked-in trace asserts about its own replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Replay must produce zero oracle violations (regression trace).
    Clean,
    /// Replay must produce at least one violation (minimized repro of a
    /// planted or historical bug).
    Violation,
}

/// A complete recorded heap history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Allocator the trace was recorded against (informative — a trace
    /// replays against any subject).
    pub allocator: String,
    /// Worker thread count.
    pub threads: u32,
    /// Scenario seed for the failpoint PRNGs.
    pub seed: u64,
    pub expect: Expectation,
    pub failpoints: Vec<FpPlan>,
    pub ops: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace shell.
    pub fn empty(allocator: &str, seed: u64) -> Self {
        Trace {
            allocator: allocator.to_string(),
            threads: 1,
            seed,
            expect: Expectation::Clean,
            failpoints: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Deterministic random trace: `threads` workers, `total_ops` ops
    /// interleaved by a seeded PRNG. Op mix and size palette cover
    /// small/aligned/large classes, calloc, realloc (including
    /// cross-size-class moves), and remote-ish frees via slot handoff
    /// between threads.
    pub fn generate(seed: u64, threads: u32, total_ops: usize) -> Self {
        let mut rng = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut ops = Vec::with_capacity(total_ops);
        let mut live: Vec<Vec<u64>> = vec![Vec::new(); threads as usize];
        let mut next_slot: u64 = 0;
        for seq in 0..total_ops as u64 {
            let t = (next() % threads as u64) as u32;
            let mine = &mut live[t as usize];
            let roll = next() % 100;
            let op = if mine.is_empty() || roll < 45 {
                let slot = next_slot;
                next_slot += 1;
                mine.push(slot);
                let size = size_from(next());
                match next() % 10 {
                    0..=6 => TraceOp::Malloc { slot, size },
                    7 | 8 => TraceOp::Calloc { slot, count: 1 + (next() % 8) as usize, size },
                    _ => {
                        let align = 16usize << (next() % 5); // 16..256
                        TraceOp::Aligned { slot, size, align }
                    }
                }
            } else if roll < 55 {
                let slot = mine[(next() % mine.len() as u64) as usize];
                TraceOp::Realloc { slot, size: size_from(next()) }
            } else {
                // Occasionally free a block another thread allocated
                // (remote free), else a local one.
                let victim_t = if next() % 4 == 0 {
                    (next() % threads as u64) as usize
                } else {
                    t as usize
                };
                let v = &mut live[victim_t];
                if v.is_empty() {
                    let slot = next_slot;
                    next_slot += 1;
                    live[t as usize].push(slot);
                    TraceOp::Malloc { slot, size: size_from(next()) }
                } else {
                    let i = (next() % v.len() as u64) as usize;
                    let slot = v.swap_remove(i);
                    TraceOp::Free { slot }
                }
            };
            ops.push(TraceEvent { seq, thread: t, op });
        }
        Trace {
            allocator: "any".to_string(),
            threads,
            seed,
            expect: Expectation::Clean,
            failpoints: Vec::new(),
            ops,
        }
    }

    /// Parses the text format; `Err` carries the first bad line.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::empty("unknown", 0);
        let mut saw_header = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
            if line.is_empty() {
                continue;
            }
            if line.starts_with('#') {
                if line.starts_with("# oracle-trace") {
                    saw_header = true;
                }
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("allocator") => {
                    trace.allocator =
                        words.next().ok_or_else(|| err("missing allocator name"))?.to_string();
                }
                Some("threads") => {
                    trace.threads = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad thread count"))?;
                }
                Some("seed") => {
                    let w = words.next().ok_or_else(|| err("missing seed"))?;
                    trace.seed = parse_u64(w).ok_or_else(|| err("bad seed"))?;
                }
                Some("expect") => {
                    trace.expect = match words.next() {
                        Some("clean") => Expectation::Clean,
                        Some("violation") => Expectation::Violation,
                        _ => return Err(err("expect must be clean|violation")),
                    };
                }
                Some("fp") => {
                    let site =
                        words.next().ok_or_else(|| err("missing failpoint site"))?.to_string();
                    let action = match words.next() {
                        Some("yield") => FpActionSpec::Yield,
                        Some(w) if w.starts_with("delay:") => FpActionSpec::Delay(
                            w[6..].parse().map_err(|_| err("bad delay"))?,
                        ),
                        Some("retry") => FpActionSpec::Retry,
                        Some("kill") => FpActionSpec::Kill,
                        _ => return Err(err("bad failpoint action")),
                    };
                    let trigger = match words.next() {
                        Some("always") => FpTriggerSpec::Always,
                        Some(w) if w.starts_with("nth:") => {
                            FpTriggerSpec::Nth(w[4..].parse().map_err(|_| err("bad nth"))?)
                        }
                        Some(w) if w.starts_with("chance:") => {
                            FpTriggerSpec::Chance(w[7..].parse().map_err(|_| err("bad chance"))?)
                        }
                        _ => return Err(err("bad failpoint trigger")),
                    };
                    let budget = match words.next() {
                        None => None,
                        Some(w) if w.starts_with("budget=") => {
                            Some(w[7..].parse().map_err(|_| err("bad budget"))?)
                        }
                        Some(_) => return Err(err("trailing failpoint words")),
                    };
                    trace.failpoints.push(FpPlan { site, action, trigger, budget });
                }
                Some("op") => {
                    let seq = words
                        .next()
                        .and_then(parse_u64_ref)
                        .ok_or_else(|| err("bad op seq"))?;
                    let thread = words
                        .next()
                        .and_then(|w| w.strip_prefix("t="))
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad op thread"))?;
                    let kind = words.next().ok_or_else(|| err("missing op kind"))?;
                    let mut fields: HashMap<&str, u64> = HashMap::new();
                    for w in words {
                        let (k, v) = w.split_once('=').ok_or_else(|| err("bad op field"))?;
                        fields.insert(k, parse_u64(v).ok_or_else(|| err("bad op value"))?);
                    }
                    let slot = *fields.get("slot").ok_or_else(|| err("missing slot"))?;
                    let size = fields.get("size").copied();
                    let op = match kind {
                        "malloc" => TraceOp::Malloc {
                            slot,
                            size: size.ok_or_else(|| err("missing size"))? as usize,
                        },
                        "calloc" => TraceOp::Calloc {
                            slot,
                            count: *fields.get("count").ok_or_else(|| err("missing count"))?
                                as usize,
                            size: size.ok_or_else(|| err("missing size"))? as usize,
                        },
                        "aligned" => TraceOp::Aligned {
                            slot,
                            size: size.ok_or_else(|| err("missing size"))? as usize,
                            align: *fields.get("align").ok_or_else(|| err("missing align"))?
                                as usize,
                        },
                        "realloc" => TraceOp::Realloc {
                            slot,
                            size: size.ok_or_else(|| err("missing size"))? as usize,
                        },
                        "free" => TraceOp::Free { slot },
                        _ => return Err(err("unknown op kind")),
                    };
                    trace.ops.push(TraceEvent { seq, thread, op });
                }
                _ => return Err(err("unknown directive")),
            }
        }
        if !saw_header {
            return Err("missing `# oracle-trace v1` header".to_string());
        }
        Ok(trace)
    }
}

fn parse_u64(w: &str) -> Option<u64> {
    if let Some(hex) = w.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        w.parse().ok()
    }
}

fn parse_u64_ref(w: &str) -> Option<u64> {
    parse_u64(w)
}

fn size_from(r: u64) -> usize {
    match r % 100 {
        // Mostly small blocks (both paper workloads live here)...
        0..=69 => 8 + (r >> 8) as usize % 248,
        // ...some mid sizes crossing size classes...
        70..=89 => 256 + (r >> 8) as usize % 7936,
        // ...and a few genuinely large (straight-from-OS) blocks.
        _ => 64 * 1024 + (r >> 8) as usize % (64 * 1024),
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# oracle-trace v1")?;
        writeln!(f, "allocator {}", self.allocator)?;
        writeln!(f, "threads {}", self.threads)?;
        writeln!(f, "seed {:#x}", self.seed)?;
        writeln!(
            f,
            "expect {}",
            match self.expect {
                Expectation::Clean => "clean",
                Expectation::Violation => "violation",
            }
        )?;
        for fp in &self.failpoints {
            write!(f, "fp {} ", fp.site)?;
            match fp.action {
                FpActionSpec::Yield => write!(f, "yield")?,
                FpActionSpec::Delay(n) => write!(f, "delay:{n}")?,
                FpActionSpec::Retry => write!(f, "retry")?,
                FpActionSpec::Kill => write!(f, "kill")?,
            }
            match fp.trigger {
                FpTriggerSpec::Always => write!(f, " always")?,
                FpTriggerSpec::Nth(n) => write!(f, " nth:{n}")?,
                FpTriggerSpec::Chance(p) => write!(f, " chance:{p}")?,
            }
            if let Some(b) = fp.budget {
                write!(f, " budget={b}")?;
            }
            writeln!(f)?;
        }
        for ev in &self.ops {
            write!(f, "op {} t={} ", ev.seq, ev.thread)?;
            match ev.op {
                TraceOp::Malloc { slot, size } => writeln!(f, "malloc slot={slot} size={size}")?,
                TraceOp::Calloc { slot, count, size } => {
                    writeln!(f, "calloc slot={slot} count={count} size={size}")?
                }
                TraceOp::Aligned { slot, size, align } => {
                    writeln!(f, "aligned slot={slot} size={size} align={align}")?
                }
                TraceOp::Realloc { slot, size } => {
                    writeln!(f, "realloc slot={slot} size={size}")?
                }
                TraceOp::Free { slot } => writeln!(f, "free slot={slot}")?,
            }
        }
        Ok(())
    }
}

/// Concurrent op recorder behind [`crate::OracleMalloc::recording`].
///
/// Assigns each OS thread a dense trace-thread id on first use and
/// stamps every op with a global sequence number. The single mutex
/// serializes recording — recording mode documents interleavings, it
/// does not preserve timing, so the coarse lock is acceptable.
pub struct TraceRecorder {
    seq: AtomicU64,
    state: Mutex<RecorderState>,
}

#[derive(Default)]
struct RecorderState {
    thread_ids: HashMap<std::thread::ThreadId, u32>,
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    pub fn new() -> Self {
        TraceRecorder { seq: AtomicU64::new(0), state: Mutex::new(RecorderState::default()) }
    }

    /// Logs one op from the calling thread.
    pub fn log(&self, op: TraceOp) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let n = st.thread_ids.len() as u32;
        let thread = *st.thread_ids.entry(std::thread::current().id()).or_insert(n);
        st.events.push(TraceEvent { seq, thread, op });
    }

    /// Drains the recording into a [`Trace`] (ops sorted by seq).
    pub fn finish(&self, allocator: &str, seed: u64) -> Trace {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut ops = std::mem::take(&mut st.events);
        ops.sort_unstable_by_key(|e| e.seq);
        let threads = st.thread_ids.len().max(1) as u32;
        Trace {
            allocator: allocator.to_string(),
            threads,
            seed,
            expect: Expectation::Clean,
            failpoints: Vec::new(),
            ops,
        }
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let mut t = Trace::generate(0x5EED, 3, 200);
        t.allocator = "lfmalloc".into();
        t.expect = Expectation::Violation;
        t.failpoints.push(FpPlan {
            site: "alloc.double_handout".into(),
            action: FpActionSpec::Retry,
            trigger: FpTriggerSpec::Nth(7),
            budget: Some(1),
        });
        t.failpoints.push(FpPlan {
            site: "active.reserve".into(),
            action: FpActionSpec::Delay(500),
            trigger: FpTriggerSpec::Chance(32768),
            budget: None,
        });
        let text = t.to_string();
        let back = Trace::parse(&text).expect("roundtrip parse");
        assert_eq!(t, back);
    }

    #[test]
    fn generate_is_deterministic() {
        assert_eq!(Trace::generate(1, 4, 500), Trace::generate(1, 4, 500));
        assert_ne!(Trace::generate(1, 4, 500), Trace::generate(2, 4, 500));
    }

    #[test]
    fn generated_slots_are_coherent() {
        let t = Trace::generate(9, 4, 1000);
        // Every freed/realloc'd slot was allocated earlier in seq order
        // and never double-freed.
        let mut live = std::collections::HashSet::new();
        for ev in &t.ops {
            match ev.op {
                TraceOp::Malloc { slot, .. }
                | TraceOp::Calloc { slot, .. }
                | TraceOp::Aligned { slot, .. } => assert!(live.insert(slot)),
                TraceOp::Realloc { slot, .. } => assert!(live.contains(&slot)),
                TraceOp::Free { slot } => assert!(live.remove(&slot)),
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::parse("op 0 t=0 malloc slot=1 size=8").is_err(), "no header");
        assert!(Trace::parse("# oracle-trace v1\nfrobnicate 3").is_err());
        assert!(Trace::parse("# oracle-trace v1\nop 0 t=0 malloc slot=1").is_err(), "no size");
    }

    #[test]
    fn recorder_orders_by_seq() {
        let r = TraceRecorder::new();
        r.log(TraceOp::Malloc { slot: 0, size: 8 });
        r.log(TraceOp::Free { slot: 0 });
        let t = r.finish("test", 1);
        assert_eq!(t.ops.len(), 2);
        assert!(t.ops[0].seq < t.ops[1].seq);
        assert_eq!(t.threads, 1);
    }
}
