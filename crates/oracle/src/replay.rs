//! Deterministic trace replay: the turn-ticket scheduler.
//!
//! Replay re-executes a [`Trace`] against any allocator with real
//! threads (so thread-identity-dependent behavior — per-heap routing,
//! remote frees, hazard records — is faithfully exercised) but with
//! exactly **one op in flight at a time**: a global turn counter admits
//! ops strictly in recorded `seq` order. Combined with re-arming the
//! trace's seeded failpoint plans, two replays of the same trace
//! perform the identical sequence of heap transitions, which is what
//! lets a shrunk repro assert "this exact violation, every run".
//!
//! Slot semantics make traces subset-closed: an op naming a slot with
//! no live block is a silent no-op, so the shrinker can drop any subset
//! of ops and still have a well-formed trace. After the last op the
//! replayer (single-threaded again, i.e. quiescent) runs the oracle's
//! full sweep ([`OracleMalloc::verify_all`]) and drains every live
//! block, so lost frees and leaks surface even when no per-op check
//! fired.

use crate::trace::{Trace, TraceOp};
use crate::wrapper::{Mode, OracleConfig, OracleMalloc, Violation};
use malloc_api::RawMalloc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// What one replay observed.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Oracle violations, in detection order (empty on a clean run).
    pub violations: Vec<Violation>,
    /// Ops actually executed (the tail after a halt is skipped).
    pub executed_ops: usize,
    /// Blocks drained at the end of the run (live blocks at quiescence,
    /// zero when the run halted on a violation).
    pub drained: usize,
    /// Whether the trace's failpoint plans were actually armed (false
    /// when the `failpoints` feature is compiled out).
    pub failpoints_armed: bool,
}

impl ReplayOutcome {
    /// True when the replay saw no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays `trace` against `alloc`. See the module docs.
///
/// With the `failpoints` feature on this always takes the global
/// failpoint scenario guard for the whole replay — even for traces
/// with no plans, so a concurrently armed scenario elsewhere in the
/// process can never bleed into this replay (and vice versa). Callers
/// must NOT hold the guard already.
pub fn replay(alloc: &dyn RawMalloc, trace: &Trace) -> ReplayOutcome {
    #[cfg(feature = "failpoints")]
    let _guard = {
        let guard = malloc_api::failpoints::scenario(trace.seed);
        for plan in &trace.failpoints {
            arm_plan(plan);
        }
        guard
    };

    let oracle = OracleMalloc::with_config(
        alloc,
        OracleConfig { fill: true, mode: Mode::Record, capacity: 1 << 16 },
    );

    // Dense global order: position i in `order` is the i-th turn; the
    // value is (thread, index-into-that-thread's-op-list).
    let mut indexed: Vec<(u64, u32, TraceOp)> =
        trace.ops.iter().map(|e| (e.seq, e.thread, e.op)).collect();
    indexed.sort_unstable_by_key(|(seq, _, _)| *seq);
    let nthreads = trace.threads.max(1) as usize;
    let mut per_thread: Vec<Vec<(usize, TraceOp)>> = vec![Vec::new(); nthreads];
    for (turn, (_, t, op)) in indexed.iter().enumerate() {
        per_thread[(*t as usize) % nthreads].push((turn, *op));
    }

    let max_slot = trace.ops.iter().map(|e| e.op.slot()).max().unwrap_or(0) as usize;
    // slot -> (live user pointer or 0, its current size)
    let slots: Vec<(AtomicUsize, AtomicUsize)> =
        (0..=max_slot).map(|_| (AtomicUsize::new(0), AtomicUsize::new(0))).collect();

    let turn = AtomicU64::new(0);
    let executed = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for my_ops in &per_thread {
            let oracle = &oracle;
            let slots = &slots;
            let turn = &turn;
            let executed = &executed;
            scope.spawn(move || {
                for (my_turn, op) in my_ops {
                    while turn.load(Ordering::Acquire) != *my_turn as u64 {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                    // After a violation the wrapper is halted; keep
                    // consuming turns (skipping work) so no thread
                    // deadlocks waiting for its ticket.
                    if !oracle.halted() {
                        unsafe { execute(oracle, slots, *op) };
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                    turn.store(*my_turn as u64 + 1, Ordering::Release);
                }
            });
        }
    });

    // Quiescent now: full sweep, then drain what is still live.
    oracle.verify_all();
    let drained = oracle.drain_live();

    ReplayOutcome {
        violations: oracle.violations(),
        executed_ops: executed.load(Ordering::Relaxed),
        drained,
        failpoints_armed: cfg!(feature = "failpoints") && !trace.failpoints.is_empty(),
    }
}

/// Runs one op against the oracle, updating the slot table. Ops on
/// slots in the "wrong" state are no-ops (subset-closedness).
unsafe fn execute(
    oracle: &OracleMalloc<&dyn RawMalloc>,
    slots: &[(AtomicUsize, AtomicUsize)],
    op: TraceOp,
) {
    match op {
        TraceOp::Malloc { slot, size } => {
            let p = unsafe { oracle.malloc(size) };
            if !p.is_null() {
                park(slots, oracle, slot, p as usize, size);
            }
        }
        TraceOp::Calloc { slot, count, size } => {
            let p = unsafe { oracle.calloc(count, size) };
            if !p.is_null() {
                park(slots, oracle, slot, p as usize, count.saturating_mul(size));
            }
        }
        TraceOp::Aligned { slot, size, align } => {
            let p = unsafe { oracle.malloc_aligned(size, align.max(8)) };
            if !p.is_null() {
                park(slots, oracle, slot, p as usize, size);
            }
        }
        TraceOp::Realloc { slot, size } => {
            let (ptr_cell, size_cell) = &slots[slot as usize];
            let p = ptr_cell.load(Ordering::Acquire);
            if p == 0 {
                return;
            }
            let old = size_cell.load(Ordering::Acquire);
            let new = unsafe { oracle.realloc(p as *mut u8, old, size) };
            if !new.is_null() {
                ptr_cell.store(new as usize, Ordering::Release);
                size_cell.store(size, Ordering::Release);
            }
            // On failure the old block is still live under the old
            // pointer (realloc contract); leave the slot as-is.
        }
        TraceOp::Free { slot } => {
            let (ptr_cell, _) = &slots[slot as usize];
            let p = ptr_cell.swap(0, Ordering::AcqRel);
            if p != 0 {
                unsafe { oracle.free(p as *mut u8) };
            }
        }
    }
}

/// Stores a fresh block into its slot. A shrunk trace can allocate
/// twice into one slot; the displaced block is freed rather than leaked
/// so the end-of-run drain accounting stays exact.
fn park(
    slots: &[(AtomicUsize, AtomicUsize)],
    oracle: &OracleMalloc<&dyn RawMalloc>,
    slot: u64,
    p: usize,
    size: usize,
) {
    let (ptr_cell, size_cell) = &slots[slot as usize];
    let old = ptr_cell.swap(p, Ordering::AcqRel);
    size_cell.store(size, Ordering::Release);
    if old != 0 {
        unsafe { oracle.free(old as *mut u8) };
    }
}

#[cfg(feature = "failpoints")]
fn arm_plan(plan: &crate::trace::FpPlan) {
    use crate::trace::{FpActionSpec, FpTriggerSpec};
    use malloc_api::failpoints::{arm_limited, FpAction, FpTrigger};
    let action = match plan.action {
        FpActionSpec::Yield => FpAction::Yield,
        FpActionSpec::Delay(n) => FpAction::Delay(n),
        FpActionSpec::Retry => FpAction::Retry,
        FpActionSpec::Kill => FpAction::Kill,
    };
    let trigger = match plan.trigger {
        FpTriggerSpec::Always => FpTrigger::Always,
        FpTriggerSpec::Nth(n) => FpTrigger::EveryNth(n),
        FpTriggerSpec::Chance(p) => FpTrigger::Chance(p),
    };
    arm_limited(intern(&plan.site), action, trigger, plan.budget.unwrap_or(u64::MAX));
}

/// Failpoint sites are `&'static str`; trace files carry arbitrary
/// strings. Interned once per unique name for the process lifetime.
#[cfg(feature = "failpoints")]
fn intern(name: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    match set.get(name) {
        Some(s) => s,
        None => {
            let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use lfmalloc::LfMalloc;

    #[test]
    fn generated_trace_replays_clean() {
        let alloc = LfMalloc::new_default();
        let trace = Trace::generate(0xCAFE, 4, 800);
        let out = replay(&alloc, &trace);
        assert!(out.is_clean(), "violations: {:?}", out.violations);
        assert_eq!(out.executed_ops, 800);
        assert!(alloc.audit().is_clean());
    }

    #[test]
    fn replay_is_repeatable() {
        let trace = Trace::generate(0xBEEF, 3, 400);
        let a = replay(&LfMalloc::new_default(), &trace);
        let b = replay(&LfMalloc::new_default(), &trace);
        assert_eq!(a.executed_ops, b.executed_ops);
        assert_eq!(a.drained, b.drained);
        assert_eq!(a.is_clean(), b.is_clean());
    }

    #[test]
    fn empty_trace_is_clean() {
        let out = replay(&LfMalloc::new_default(), &Trace::empty("lfmalloc", 0));
        assert!(out.is_clean());
        assert_eq!(out.executed_ops, 0);
    }
}
