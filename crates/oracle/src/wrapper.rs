//! [`OracleMalloc`]: the shadow-heap verifying wrapper.
//!
//! Wraps any [`RawMalloc`] and mirrors every operation into a
//! [`ShadowMap`], checking on each op:
//!
//! * **uniqueness** — a returned pointer must not already be live
//!   (double-hand-out), and a freed pointer must be live (double free /
//!   wild free);
//! * **alignment** — results honor [`MIN_MALLOC_ALIGN`] and any
//!   explicit `malloc_aligned` request;
//! * **usable size** — `usable_size` never reports less than the
//!   request;
//! * **zeroing** — `calloc`/`malloc_zeroed` results are actually zero,
//!   and the overflow-checked multiply never "succeeds" small;
//! * **content integrity** (fill mode) — each block is filled with a
//!   position-based pattern keyed by a per-block nonce
//!   ([`testkit::fill_seeded`]) and verified at free/realloc, catching
//!   any cross-block scribble the allocator commits between the two
//!   points, plus realloc's `min(old, new)` preservation contract.
//!
//! Fill mode assumes the *oracle is the only writer* of user bytes —
//! the differential harness and the replayer own their blocks. To wrap
//! a real workload (which writes into its blocks), use
//! [`OracleMalloc::recording`], which disables fill checks and attaches
//! a [`TraceRecorder`].
//!
//! On violation, [`Mode::Panic`] aborts the test immediately with a
//! descriptive message; [`Mode::Record`] logs the violation and
//! *halts*: subsequent mallocs return null and frees become no-ops, so
//! a detected double-hand-out never cascades into real double frees of
//! the underlying allocator. The replayer uses Record mode and stops at
//! the first violation.

use crate::shadow::{InsertError, ShadowBlock, ShadowMap};
use crate::trace::{TraceOp, TraceRecorder};
use malloc_api::testkit;
use malloc_api::{AllocStats, RawMalloc, MIN_MALLOC_ALIGN};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What the wrapper does when a check fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Panic at the violating call site (plain unit tests).
    Panic,
    /// Record the violation and halt the wrapper (replayer, shrinker).
    Record,
}

/// Wrapper configuration.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Fill blocks with seeded patterns and verify them at free and
    /// realloc. Requires that no one but the oracle writes user bytes.
    pub fill: bool,
    /// Violation handling.
    pub mode: Mode,
    /// Shadow-map capacity (live blocks).
    pub capacity: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { fill: true, mode: Mode::Panic, capacity: 1 << 16 }
    }
}

/// One detected contract violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The allocator returned a pointer that is already live.
    DoubleHandOut { ptr: usize, size: usize, existing_size: usize },
    /// A free/realloc of a pointer that is not live (double free or a
    /// pointer the oracle never saw).
    UntrackedFree { ptr: usize },
    /// A result violates its alignment contract.
    Misaligned { ptr: usize, align: usize },
    /// `usable_size` reported less than the requested size.
    UsableTooSmall { ptr: usize, requested: usize, usable: usize },
    /// A `calloc`/`malloc_zeroed` result had a nonzero byte.
    NotZeroed { ptr: usize, size: usize, index: usize },
    /// `calloc` returned non-null for an overflowing `count * size`.
    CallocOverflow { count: usize, size: usize },
    /// A block's fill pattern was damaged between hand-out and free.
    ContentCorruption { ptr: usize, size: usize, index: usize },
    /// Realloc failed to preserve `min(old, new)` bytes.
    ReallocContentLoss { old_ptr: usize, new_ptr: usize, preserved: usize, index: usize },
    /// Two live blocks overlap (found by the quiescent sweep).
    Overlap { a: usize, a_size: usize, b: usize },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::DoubleHandOut { ptr, size, existing_size } => write!(
                f,
                "double hand-out: {ptr:#x} returned for a {size}-byte request while still live as a {existing_size}-byte block"
            ),
            Violation::UntrackedFree { ptr } => {
                write!(f, "free of {ptr:#x}, which is not a live block (double free or wild pointer)")
            }
            Violation::Misaligned { ptr, align } => {
                write!(f, "{ptr:#x} violates its {align}-byte alignment contract")
            }
            Violation::UsableTooSmall { ptr, requested, usable } => write!(
                f,
                "usable_size({ptr:#x}) = {usable} is below the requested {requested} bytes"
            ),
            Violation::NotZeroed { ptr, size, index } => {
                write!(f, "zeroed allocation {ptr:#x} ({size} bytes) has a nonzero byte at offset {index}")
            }
            Violation::CallocOverflow { count, size } => {
                write!(f, "calloc({count}, {size}) overflows usize yet returned non-null")
            }
            Violation::ContentCorruption { ptr, size, index } => write!(
                f,
                "content corruption: byte {index} of live block {ptr:#x} ({size} bytes) changed between hand-out and free"
            ),
            Violation::ReallocContentLoss { old_ptr, new_ptr, preserved, index } => write!(
                f,
                "realloc {old_ptr:#x} -> {new_ptr:#x} lost contents: byte {index} of the {preserved} preserved bytes differs"
            ),
            Violation::Overlap { a, a_size, b } => {
                write!(f, "live blocks overlap: [{a:#x} + {a_size}) covers {b:#x}")
            }
        }
    }
}

/// The shadow-heap verifying allocator wrapper. See the module docs.
pub struct OracleMalloc<A> {
    inner: A,
    map: ShadowMap,
    cfg: OracleConfig,
    display_name: String,
    next_nonce: AtomicU64,
    next_slot: AtomicU64,
    violations: Mutex<Vec<Violation>>,
    violation_count: AtomicUsize,
    halted: AtomicBool,
    recorder: Option<TraceRecorder>,
}

impl<A: RawMalloc> OracleMalloc<A> {
    /// Panic-on-violation wrapper with fill checking — the default for
    /// oracle-driven tests that own their blocks.
    pub fn new(inner: A) -> Self {
        Self::with_config(inner, OracleConfig::default())
    }

    /// Wrapper with explicit configuration.
    pub fn with_config(inner: A, cfg: OracleConfig) -> Self {
        let display_name = format!("oracle({})", inner.name());
        OracleMalloc {
            inner,
            map: ShadowMap::new(cfg.capacity),
            cfg,
            display_name,
            next_nonce: AtomicU64::new(1),
            next_slot: AtomicU64::new(0),
            violations: Mutex::new(Vec::new()),
            violation_count: AtomicUsize::new(0),
            halted: AtomicBool::new(false),
            recorder: None,
        }
    }

    /// Recording wrapper for real workloads: fill checking off (the
    /// workload writes its blocks), violations recorded not panicked,
    /// and every op logged into a [`TraceRecorder`] whose trace
    /// [`take_trace`](Self::take_trace) returns.
    pub fn recording(inner: A, capacity: usize) -> Self {
        let mut o = Self::with_config(
            inner,
            OracleConfig { fill: false, mode: Mode::Record, capacity },
        );
        o.recorder = Some(TraceRecorder::new());
        o
    }

    /// The wrapped allocator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Number of violations seen so far.
    pub fn violation_count(&self) -> usize {
        self.violation_count.load(Ordering::Acquire)
    }

    /// Snapshot of recorded violations (Record mode).
    pub fn violations(&self) -> Vec<Violation> {
        self.violations.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Live blocks currently tracked.
    pub fn live_blocks(&self) -> usize {
        self.map.len()
    }

    /// Finishes recording: the ops logged so far as a [`crate::Trace`]
    /// (empty unless built with [`recording`](Self::recording)).
    pub fn take_trace(&self, seed: u64) -> crate::Trace {
        match &self.recorder {
            Some(r) => r.finish(self.inner.name(), seed),
            None => crate::Trace::empty(self.inner.name(), seed),
        }
    }

    /// Quiescent full-heap sweep: checks that no two live blocks
    /// overlap and (fill mode) that every live block's pattern is
    /// intact. Returns the number of *new* violations found.
    ///
    /// Must only be called while no other thread is using the wrapper;
    /// a concurrent sweep can tear across a free-then-reuse and report
    /// a false overlap.
    pub fn verify_all(&self) -> usize {
        let before = self.violation_count();
        let snap = self.map.snapshot();
        for w in snap.windows(2) {
            let (a, am) = w[0];
            let (b, _) = w[1];
            if a + am.size > b {
                self.report(Violation::Overlap { a, a_size: am.size, b });
            }
        }
        if self.cfg.fill {
            for (p, m) in &snap {
                if let Some(i) = unsafe { first_pattern_mismatch(*p as *mut u8, m.size, m.nonce) } {
                    self.report(Violation::ContentCorruption { ptr: *p, size: m.size, index: i });
                }
            }
        }
        self.violation_count() - before
    }

    /// Frees every block the oracle still tracks (quiescent only).
    /// Returns how many were drained. A halted wrapper drains nothing —
    /// after a violation the underlying heap is not trustworthy.
    pub fn drain_live(&self) -> usize {
        if self.halted() {
            return 0;
        }
        let snap = self.map.snapshot();
        let n = snap.len();
        for (p, _) in snap {
            unsafe { self.free(p as *mut u8) };
        }
        n
    }

    /// True once a Record-mode violation has halted the wrapper.
    pub fn halted(&self) -> bool {
        self.halted.load(Ordering::Acquire)
    }

    fn report(&self, v: Violation) {
        self.violation_count.fetch_add(1, Ordering::AcqRel);
        match self.cfg.mode {
            Mode::Panic => panic!("[{}] oracle violation: {v}", self.display_name),
            Mode::Record => {
                self.halted.store(true, Ordering::Release);
                self.violations.lock().unwrap_or_else(|e| e.into_inner()).push(v);
            }
        }
    }

    fn fresh_nonce(&self) -> u64 {
        self.next_nonce.fetch_add(1, Ordering::Relaxed)
    }

    fn fresh_slot(&self) -> u64 {
        self.next_slot.fetch_add(1, Ordering::Relaxed)
    }

    fn record(&self, op: TraceOp) {
        if let Some(r) = &self.recorder {
            r.log(op);
        }
    }

    /// Registers a fresh allocation and runs the hand-out checks.
    /// `None` means a violation was recorded (halted mode) — the caller
    /// then reports null to the application so the doubly-handed-out
    /// block is never written through. `Some(slot)` is the logical slot
    /// id assigned for trace recording (`u64::MAX` for a null result).
    unsafe fn note_alloc(&self, p: *mut u8, size: usize, align: usize, zeroed: bool) -> Option<u64> {
        if p.is_null() {
            return Some(u64::MAX);
        }
        let addr = p as usize;
        if addr % align.max(MIN_MALLOC_ALIGN) != 0 {
            self.report(Violation::Misaligned { ptr: addr, align: align.max(MIN_MALLOC_ALIGN) });
            return None;
        }
        let usable = unsafe { self.inner.usable_size(p) };
        if usable != 0 && usable < size {
            self.report(Violation::UsableTooSmall { ptr: addr, requested: size, usable });
            return None;
        }
        if zeroed && self.cfg.fill {
            for i in 0..size {
                if unsafe { *p.add(i) } != 0 {
                    self.report(Violation::NotZeroed { ptr: addr, size, index: i });
                    return None;
                }
            }
        }
        let nonce = self.fresh_nonce();
        let slot = self.fresh_slot();
        let meta = ShadowBlock { size, align, nonce, slot };
        match self.map.insert(addr, meta) {
            Ok(()) => {
                // Fill only after the insert succeeded: on a duplicate
                // we must not scribble over the first owner's pattern.
                if self.cfg.fill {
                    unsafe { testkit::fill_seeded(p, size, nonce) };
                }
                Some(slot)
            }
            Err(InsertError::Duplicate(existing)) => {
                self.report(Violation::DoubleHandOut {
                    ptr: addr,
                    size,
                    existing_size: existing.size,
                });
                None
            }
            Err(InsertError::Full) => {
                panic!(
                    "[{}] shadow map full ({} live blocks): raise OracleConfig::capacity",
                    self.display_name,
                    self.map.len()
                )
            }
        }
    }
}

unsafe impl<A: RawMalloc> RawMalloc for OracleMalloc<A> {
    unsafe fn malloc(&self, size: usize) -> *mut u8 {
        if self.halted() {
            return core::ptr::null_mut();
        }
        let p = unsafe { self.inner.malloc(size) };
        let Some(slot) = (unsafe { self.note_alloc(p, size, MIN_MALLOC_ALIGN, false) }) else {
            return core::ptr::null_mut();
        };
        if !p.is_null() {
            self.record(TraceOp::Malloc { slot, size });
        }
        p
    }

    unsafe fn malloc_aligned(&self, size: usize, align: usize) -> *mut u8 {
        if self.halted() {
            return core::ptr::null_mut();
        }
        let p = unsafe { self.inner.malloc_aligned(size, align) };
        let Some(slot) = (unsafe { self.note_alloc(p, size, align, false) }) else {
            return core::ptr::null_mut();
        };
        if !p.is_null() {
            self.record(TraceOp::Aligned { slot, size, align });
        }
        p
    }

    unsafe fn malloc_zeroed(&self, size: usize) -> *mut u8 {
        if self.halted() {
            return core::ptr::null_mut();
        }
        let p = unsafe { self.inner.malloc_zeroed(size) };
        let Some(slot) = (unsafe { self.note_alloc(p, size, MIN_MALLOC_ALIGN, true) }) else {
            return core::ptr::null_mut();
        };
        if !p.is_null() {
            self.record(TraceOp::Calloc { slot, count: 1, size });
        }
        p
    }

    unsafe fn calloc(&self, count: usize, size: usize) -> *mut u8 {
        if self.halted() {
            return core::ptr::null_mut();
        }
        let p = unsafe { self.inner.calloc(count, size) };
        let Some(total) = count.checked_mul(size) else {
            if !p.is_null() {
                self.report(Violation::CallocOverflow { count, size });
            }
            return core::ptr::null_mut();
        };
        let Some(slot) = (unsafe { self.note_alloc(p, total, MIN_MALLOC_ALIGN, true) }) else {
            return core::ptr::null_mut();
        };
        if !p.is_null() {
            self.record(TraceOp::Calloc { slot, count, size });
        }
        p
    }

    unsafe fn free(&self, ptr: *mut u8) {
        if ptr.is_null() {
            unsafe { self.inner.free(ptr) };
            return;
        }
        if self.halted() {
            return; // leak rather than poke a heap already proven broken
        }
        match self.map.remove(ptr as usize) {
            Some(meta) => {
                if self.cfg.fill {
                    if let Some(i) =
                        unsafe { first_pattern_mismatch(ptr, meta.size, meta.nonce) }
                    {
                        self.report(Violation::ContentCorruption {
                            ptr: ptr as usize,
                            size: meta.size,
                            index: i,
                        });
                        return; // don't free: the block's provenance is in doubt
                    }
                }
                self.record(TraceOp::Free { slot: meta.slot });
                unsafe { self.inner.free(ptr) };
            }
            None => {
                // Never forward: freeing it again would turn a detected
                // violation into real heap corruption.
                self.report(Violation::UntrackedFree { ptr: ptr as usize });
            }
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, old_size_hint: usize, new_size: usize) -> *mut u8 {
        if ptr.is_null() {
            return unsafe { self.malloc(new_size) };
        }
        if self.halted() {
            return core::ptr::null_mut();
        }
        let Some(meta) = self.map.remove(ptr as usize) else {
            self.report(Violation::UntrackedFree { ptr: ptr as usize });
            return core::ptr::null_mut();
        };
        // The old block must still be intact right up to the realloc.
        if self.cfg.fill {
            if let Some(i) = unsafe { first_pattern_mismatch(ptr, meta.size, meta.nonce) } {
                self.report(Violation::ContentCorruption {
                    ptr: ptr as usize,
                    size: meta.size,
                    index: i,
                });
                return core::ptr::null_mut();
            }
        }
        let new = unsafe { self.inner.realloc(ptr, old_size_hint.max(meta.size), new_size) };
        if new.is_null() {
            // Contract: failure leaves the old block untouched.
            let _ = self.map.insert(ptr as usize, meta);
            return core::ptr::null_mut();
        }
        // min(old, new) bytes must have survived the move, verified via
        // the position-based pattern (it is address-independent).
        let preserved = meta.size.min(new_size);
        if self.cfg.fill {
            if let Some(i) = unsafe { first_pattern_mismatch(new, preserved, meta.nonce) } {
                self.report(Violation::ReallocContentLoss {
                    old_ptr: ptr as usize,
                    new_ptr: new as usize,
                    preserved,
                    index: i,
                });
                return core::ptr::null_mut();
            }
        }
        let addr = new as usize;
        if addr % MIN_MALLOC_ALIGN != 0 {
            self.report(Violation::Misaligned { ptr: addr, align: MIN_MALLOC_ALIGN });
            return core::ptr::null_mut();
        }
        let nonce = self.fresh_nonce();
        let new_meta = ShadowBlock { size: new_size, align: MIN_MALLOC_ALIGN, nonce, slot: meta.slot };
        match self.map.insert(addr, new_meta) {
            Ok(()) => {
                if self.cfg.fill {
                    unsafe { testkit::fill_seeded(new, new_size, nonce) };
                }
                self.record(TraceOp::Realloc { slot: meta.slot, size: new_size });
                new
            }
            Err(InsertError::Duplicate(existing)) => {
                self.report(Violation::DoubleHandOut {
                    ptr: addr,
                    size: new_size,
                    existing_size: existing.size,
                });
                core::ptr::null_mut()
            }
            Err(InsertError::Full) => panic!(
                "[{}] shadow map full ({} live blocks): raise OracleConfig::capacity",
                self.display_name,
                self.map.len()
            ),
        }
    }

    unsafe fn usable_size(&self, ptr: *mut u8) -> usize {
        unsafe { self.inner.usable_size(ptr) }
    }

    fn name(&self) -> &str {
        &self.display_name
    }

    fn stats(&self) -> AllocStats {
        self.inner.stats()
    }
}

/// Index of the first byte of `[p, p+size)` that does not match the
/// seeded pattern for `nonce`, or `None` when intact. The non-panicking
/// twin of [`testkit::check_seeded`].
unsafe fn first_pattern_mismatch(p: *mut u8, size: usize, nonce: u64) -> Option<usize> {
    let tag = nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93;
    for i in 0..size {
        let expect = ((tag >> ((i % 8) * 8)) as u8) ^ (i as u8);
        if unsafe { *p.add(i) } != expect {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlheap::LockedHeap;
    use lfmalloc::LfMalloc;

    #[test]
    fn clean_usage_stays_clean() {
        let o = OracleMalloc::new(LfMalloc::new_default());
        unsafe {
            let mut blocks = Vec::new();
            for i in 0..200usize {
                let p = o.malloc(8 + (i * 37) % 3000);
                assert!(!p.is_null());
                blocks.push(p);
            }
            assert_eq!(o.verify_all(), 0);
            for p in blocks {
                o.free(p);
            }
        }
        assert_eq!(o.violation_count(), 0);
        assert_eq!(o.live_blocks(), 0);
    }

    #[test]
    fn record_mode_catches_untracked_free_and_halts() {
        let o = OracleMalloc::with_config(
            LockedHeap::new(),
            OracleConfig { mode: Mode::Record, ..OracleConfig::default() },
        );
        unsafe {
            let p = o.malloc(64);
            assert!(!p.is_null());
            o.free(p);
            o.free(p); // double free: caught by the shadow map, not forwarded
        }
        assert_eq!(o.violation_count(), 1);
        assert!(matches!(o.violations()[0], Violation::UntrackedFree { .. }));
        assert!(o.halted());
        unsafe { assert!(o.malloc(8).is_null(), "halted wrapper must refuse new work") };
    }

    #[test]
    #[should_panic(expected = "oracle violation")]
    fn panic_mode_panics_on_corruption() {
        let o = OracleMalloc::new(LockedHeap::new());
        unsafe {
            let p = o.malloc(64);
            *p.add(10) ^= 0xFF; // simulate a stray write from "another" block
            o.free(p);
        }
    }

    #[test]
    fn realloc_contract_is_verified() {
        let o = OracleMalloc::new(LfMalloc::new_default());
        unsafe {
            let p = o.malloc(100);
            let q = o.realloc(p, 100, 50_000); // cross-size-class move
            assert!(!q.is_null());
            let r = o.realloc(q, 50_000, 40); // big shrink
            assert!(!r.is_null());
            o.free(r);
        }
        assert_eq!(o.violation_count(), 0);
        assert_eq!(o.live_blocks(), 0);
    }

    #[test]
    fn calloc_zeroing_is_verified() {
        let o = OracleMalloc::new(LfMalloc::new_default());
        unsafe {
            let p = o.calloc(16, 250);
            assert!(!p.is_null());
            o.free(p);
            assert!(o.calloc(usize::MAX, 2).is_null());
        }
        assert_eq!(o.violation_count(), 0);
    }

    #[test]
    fn drain_live_frees_everything() {
        let o = OracleMalloc::new(LfMalloc::new_default());
        unsafe {
            for _ in 0..50 {
                assert!(!o.malloc(128).is_null());
            }
        }
        assert_eq!(o.live_blocks(), 50);
        assert_eq!(o.drain_live(), 50);
        assert_eq!(o.live_blocks(), 0);
        assert!(o.inner().audit().is_clean());
    }
}
