//! Shadow-heap differential oracle for the allocator workspace.
//!
//! The paper's correctness argument rests on the Active/Anchor/credits
//! CAS protocols; when those break, the failure is silent cross-thread
//! memory corruption — a block handed to two owners, a remote free
//! lost, realloc dropping user bytes. The metadata walker
//! (`lfmalloc::audit`) and the hardened free path check allocator
//! *bookkeeping*; neither ever looks at user-visible *contents* or at
//! behavioral agreement between allocators. This crate supplies that
//! third leg:
//!
//! * [`OracleMalloc`] — a [`RawMalloc`](malloc_api::RawMalloc) wrapper
//!   that mirrors every malloc/free/realloc into a lock-free shadow map
//!   ([`shadow::ShadowMap`]) and asserts non-overlap of live blocks,
//!   alignment and usable-size contracts, calloc zeroing, and content
//!   integrity via per-block seeded fill patterns verified at
//!   free/realloc time.
//! * [`trace`] — a compact text format for per-thread op logs (thread,
//!   op, logical slot, sizes, failpoint plans, scenario seed), a
//!   deterministic generator, and a recorder the workloads use.
//! * [`replay`] — re-executes a trace against any allocator with a
//!   turn-ticket scheduler (one op in flight at a time, in recorded
//!   global order), re-arming the trace's seeded failpoint plans, so
//!   every torture failure becomes a checked-in artifact instead of a
//!   flake.
//! * [`shrink`] — a delta-debugging reducer that minimizes a failing
//!   trace (chunk removal, then per-op elimination) while re-running
//!   the replayer each step; minimized repros live in `tests/corpus/`.
//!
//! The oracle composes with, rather than duplicates, the existing
//! checks: `audit()` proves the allocator's internal accounting is
//! consistent, hardening proves frees carry valid provenance, and the
//! oracle proves the *user-visible* heap behaves like a heap.

pub mod replay;
pub mod shadow;
pub mod shrink;
pub mod subjects;
pub mod trace;
pub mod wrapper;

pub use replay::{replay, ReplayOutcome};
pub use shadow::{ShadowBlock, ShadowMap};
pub use shrink::shrink;
pub use subjects::{all_subjects, subject, Subject, SUBJECT_NAMES};
pub use trace::{Expectation, FpActionSpec, FpPlan, FpTriggerSpec, Trace, TraceEvent, TraceOp, TraceRecorder};
pub use wrapper::{Mode, OracleConfig, OracleMalloc, Violation};
