//! Minimal fixed-width table rendering for the report binaries.

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I: IntoIterator<Item = T>, T: Into<String>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    pub fn row<I: IntoIterator<Item = T>, T: Into<String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row/header arity mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a speedup with two decimals (the paper's Table 1 precision).
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats bytes as MiB with two decimals.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // "value" column starts at the same offset in all rows.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(2.251), "2.25");
        assert_eq!(fmt_mib(1 << 20), "1.00");
    }
}
