//! Benchmark harness regenerating every table and figure of Michael
//! (PLDI 2004) §4.
//!
//! Binaries (see DESIGN.md's experiment index):
//!
//! * `table1` — Table 1, contention-free speedup over libc malloc.
//! * `fig8`   — Figure 8(a–h), speedup vs thread count.
//! * `space`  — §4.2.5, maximum space used per allocator.
//! * `ablation` — §4.2.4 uniprocessor optimization (U1), FIFO-vs-LIFO
//!   partial lists (A1), credit batching (A2).
//!
//! Criterion micro-benches `latency` and `scalability` cover the
//! §4.2.1 latency discussion (including the lock-pair comparison).
//!
//! The registry hands out allocators as `Arc<dyn RawMalloc>` so each
//! workload binary treats all four implementations identically, the way
//! the paper swaps `malloc` shared libraries under one benchmark binary.

pub mod registry;
pub mod sweep;
pub mod table;

pub use registry::{make_allocator, AllocatorKind, DynAlloc};
pub use sweep::{run_workload, Scale, Workload};

/// Runs `w` once on an instrumented lock-free allocator and returns a
/// one-line JSON record embedding the full telemetry snapshot — the
/// payload behind the binaries' `--stats-json FILE` flag.
#[cfg(feature = "stats")]
pub fn stats_json_record(
    bench: &str,
    w: Workload,
    heaps: usize,
    threads: usize,
    scale: Scale,
) -> String {
    let (alloc, lf) = registry::make_lf_instrumented(heaps);
    let r = run_workload(w, alloc, threads, scale);
    // Headline latency percentiles and the fragmentation ratio are
    // lifted to the top level so plots and `lfstat diff` don't have to
    // dig into the embedded snapshot; the full per-path histograms stay
    // inside `stats.latency` / `stats.fragmentation`.
    let snap = lf.stats();
    let m = snap.latency.malloc_all();
    format!(
        "{{\"bench\":\"{}\",\"workload\":\"{}\",\"threads\":{},\"ops\":{},\"ns_per_op\":{:.1},\
         \"p50_malloc_ns\":{},\"p99_malloc_ns\":{},\"p999_malloc_ns\":{},\
         \"external_frag_permille\":{},\"stats\":{}}}",
        bench,
        w.label(),
        threads,
        r.ops,
        r.ns_per_op(),
        m.percentile(0.50),
        m.percentile(0.99),
        m.percentile(0.999),
        snap.fragmentation.external_frag_permille(),
        snap.to_json()
    )
}

/// Appends newline-terminated `records` to `path` (creating it), or
/// aborts with a rebuild hint when the `stats` feature is off.
pub fn write_stats_json(path: &str, records: &[String]) {
    #[cfg(feature = "stats")]
    {
        let mut body = records.join("\n");
        body.push('\n');
        std::fs::write(path, body)
            .unwrap_or_else(|e| panic!("writing --stats-json file {path}: {e}"));
        eprintln!("wrote {} telemetry record(s) to {path}", records.len());
    }
    #[cfg(not(feature = "stats"))]
    {
        let _ = (path, records);
        eprintln!("--stats-json requires a stats-enabled build:");
        eprintln!("    cargo run -p bench --features stats --bin ... -- --stats-json FILE");
        std::process::exit(2);
    }
}
