//! Benchmark harness regenerating every table and figure of Michael
//! (PLDI 2004) §4.
//!
//! Binaries (see DESIGN.md's experiment index):
//!
//! * `table1` — Table 1, contention-free speedup over libc malloc.
//! * `fig8`   — Figure 8(a–h), speedup vs thread count.
//! * `space`  — §4.2.5, maximum space used per allocator.
//! * `ablation` — §4.2.4 uniprocessor optimization (U1), FIFO-vs-LIFO
//!   partial lists (A1), credit batching (A2).
//!
//! Criterion micro-benches `latency` and `scalability` cover the
//! §4.2.1 latency discussion (including the lock-pair comparison).
//!
//! The registry hands out allocators as `Arc<dyn RawMalloc>` so each
//! workload binary treats all four implementations identically, the way
//! the paper swaps `malloc` shared libraries under one benchmark binary.

pub mod registry;
pub mod sweep;
pub mod table;

pub use registry::{make_allocator, AllocatorKind, DynAlloc};
pub use sweep::{run_workload, Scale, Workload};
