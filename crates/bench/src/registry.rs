//! The four allocators under test, behind one dynamic interface.

use dlheap::LockedHeap;
use hoard::Hoard;
use lfmalloc::{Config, LfMalloc};
use malloc_api::RawMalloc;
use ptmalloc::Ptmalloc;
use std::sync::Arc;

/// A type-erased allocator handle usable by every workload.
pub type DynAlloc = Arc<dyn RawMalloc + Send + Sync>;

/// The allocators of §4: "we compare the performance of our allocator
/// with the default AIX 5.1 libc malloc, and two widely-used
/// multithread allocators, Hoard and Ptmalloc".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocatorKind {
    /// The paper's contribution ("New").
    Lf,
    /// Hoard-style baseline.
    Hoard,
    /// Ptmalloc-style baseline.
    Ptmalloc,
    /// Serial heap behind one lock ("libc malloc").
    Libc,
}

impl AllocatorKind {
    /// All four, in the paper's reporting order.
    pub fn all() -> [AllocatorKind; 4] {
        [AllocatorKind::Lf, AllocatorKind::Hoard, AllocatorKind::Ptmalloc, AllocatorKind::Libc]
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            AllocatorKind::Lf => "new (lock-free)",
            AllocatorKind::Hoard => "hoard",
            AllocatorKind::Ptmalloc => "ptmalloc",
            AllocatorKind::Libc => "libc (serial)",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<AllocatorKind> {
        match s {
            "lf" | "new" | "lfmalloc" => Some(AllocatorKind::Lf),
            "hoard" => Some(AllocatorKind::Hoard),
            "ptmalloc" | "pt" => Some(AllocatorKind::Ptmalloc),
            "libc" | "serial" => Some(AllocatorKind::Libc),
            _ => None,
        }
    }
}

/// Builds a fresh allocator of `kind` sized for `heaps` "processors"
/// (ignored where the design has no such knob).
pub fn make_allocator(kind: AllocatorKind, heaps: usize) -> DynAlloc {
    match kind {
        AllocatorKind::Lf => Arc::new(LfMalloc::with_config(Config::with_heaps(heaps))),
        AllocatorKind::Hoard => Arc::new(Hoard::new(heaps)),
        AllocatorKind::Ptmalloc => Arc::new(Ptmalloc::new()),
        AllocatorKind::Libc => Arc::new(LockedHeap::new()),
    }
}

/// Builds an instrumented lock-free allocator, returning both the
/// type-erased handle (for the workload) and the concrete handle (so
/// the caller can snapshot telemetry after the run).
#[cfg(feature = "stats")]
pub fn make_lf_instrumented(heaps: usize) -> (DynAlloc, Arc<LfMalloc>) {
    let a = Arc::new(LfMalloc::with_config(Config::with_heaps(heaps)));
    (Arc::clone(&a) as DynAlloc, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_allocates() {
        for kind in AllocatorKind::all() {
            let a = make_allocator(kind, 2);
            unsafe {
                let p = a.malloc(64);
                assert!(!p.is_null(), "{}", kind.label());
                a.free(p);
            }
        }
    }

    #[test]
    fn parse_roundtrip() {
        assert_eq!(AllocatorKind::parse("new"), Some(AllocatorKind::Lf));
        assert_eq!(AllocatorKind::parse("hoard"), Some(AllocatorKind::Hoard));
        assert_eq!(AllocatorKind::parse("pt"), Some(AllocatorKind::Ptmalloc));
        assert_eq!(AllocatorKind::parse("libc"), Some(AllocatorKind::Libc));
        assert_eq!(AllocatorKind::parse("garbage"), None);
    }
}
