//! Ablations of the design choices DESIGN.md calls out:
//!
//! * `uniproc` — **U1 / §4.2.4**: single-heap mode with no thread-id
//!   lookup; paper reports "15% increase in contention-free speedup on
//!   Linux scalability".
//! * `partial` — **A1 / §3.2.6**: FIFO vs LIFO size-class partial lists
//!   (the paper prefers FIFO for lower contention/false sharing).
//! * `credits` — **A2 / §3.2.1-3.2.3**: how much the credits mechanism
//!   (batched reservations in the Active word) buys, by capping
//!   `MAXCREDITS`. With cap 1 every allocation that drains the Active
//!   word must touch the anchor — approximating a credit-free design.
//!
//! Usage: `ablation [uniproc|partial|credits|all] [--scale F] [--threads N]`.

use bench::table::{fmt_speedup, Table};
use bench::{run_workload, Scale, Workload};
use lfmalloc::{Config, LfMalloc, PartialMode};
use std::sync::Arc;
use workloads::WorkloadResult;

fn run_lf(config: Config, w: Workload, threads: usize, scale: Scale) -> WorkloadResult {
    // Best of three fresh-instance runs (scheduler-noise defense).
    let mut best: Option<WorkloadResult> = None;
    for _ in 0..3 {
        let alloc: bench::DynAlloc = Arc::new(LfMalloc::with_config(config));
        let r = run_workload(w, alloc, threads, scale);
        best = Some(match best {
            Some(b) if b.throughput() >= r.throughput() => b,
            _ => r,
        });
    }
    best.unwrap()
}

fn uniproc(scale: Scale) {
    println!("U1 (§4.2.4): uniprocessor optimization — single heap, no thread-id lookup");
    let multi = run_lf(Config::detect(), Workload::LinuxScalability, 1, scale);
    let single = run_lf(Config::uniprocessor(), Workload::LinuxScalability, 1, scale);
    let gain = (single.throughput() / multi.throughput() - 1.0) * 100.0;
    let mut t = Table::new(["config", "ns/op", "throughput (pairs/s)"]);
    t.row(["per-cpu heaps", &format!("{:.0}", multi.ns_per_op()), &format!("{:.0}", multi.throughput())]);
    t.row(["single heap", &format!("{:.0}", single.ns_per_op()), &format!("{:.0}", single.throughput())]);
    println!("{}", t.render());
    println!("gain: {gain:+.1}% (paper: +15% contention-free speedup on POWER3)\n");
}

fn partial(scale: Scale, threads: usize) {
    println!("A1 (§3.2.6): partial-list organizations ({threads} threads)");
    println!("fifo = MS queue (paper's choice); lifo = Treiber stack; list = ordered list w/ mid-removal\n");
    let mut t =
        Table::new(["benchmark", "fifo ops/s", "lifo ops/s", "list ops/s", "fifo/lifo", "fifo/list"]);
    for w in [Workload::Larson, Workload::ProducerConsumer(500), Workload::Threadtest] {
        let base = Config::with_heaps(threads);
        let fifo = run_lf(Config { partial_mode: PartialMode::Fifo, ..base }, w, threads, scale);
        let lifo = run_lf(Config { partial_mode: PartialMode::Lifo, ..base }, w, threads, scale);
        let list = run_lf(Config { partial_mode: PartialMode::List, ..base }, w, threads, scale);
        t.row([
            w.label(),
            format!("{:.0}", fifo.throughput()),
            format!("{:.0}", lifo.throughput()),
            format!("{:.0}", list.throughput()),
            fmt_speedup(fifo.throughput() / lifo.throughput()),
            fmt_speedup(fifo.throughput() / list.throughput()),
        ]);
    }
    println!("{}", t.render());
}

fn credits(scale: Scale, threads: usize) {
    println!("A2: MAXCREDITS sweep — what credit batching buys");
    let mut t = Table::new([
        "max_credits".to_string(),
        "linux-scal 1T ns/op".to_string(),
        format!("threadtest {threads}T ops/s"),
    ]);
    for cap in [1u32, 2, 4, 8, 16, 32, 64] {
        let cfg = Config::with_heaps(threads).with_max_credits(cap);
        let ls = run_lf(cfg, Workload::LinuxScalability, 1, scale);
        let tt = run_lf(cfg, Workload::Threadtest, threads, scale);
        t.row([
            cap.to_string(),
            format!("{:.0}", ls.ns_per_op()),
            format!("{:.0}", tt.throughput()),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: higher caps amortize Anchor CASes over more allocations.\n");
}

fn main() {
    let mut which: Vec<String> = Vec::new();
    let mut scale = 1.0f64;
    let mut threads = 4usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads takes an integer");
            }
            name @ ("uniproc" | "partial" | "credits" | "all") => which.push(name.to_string()),
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = vec!["uniproc".into(), "partial".into(), "credits".into()];
    }
    let scale = Scale(scale);
    for name in which {
        match name.as_str() {
            "uniproc" => uniproc(scale),
            "partial" => partial(scale, threads),
            "credits" => credits(scale, threads),
            _ => unreachable!(),
        }
    }
}
