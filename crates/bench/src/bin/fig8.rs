//! Regenerates **Figure 8(a–h)**: speedup over contention-free libc
//! malloc as a function of thread count, for all six benchmarks (the
//! producer-consumer panels f/g/h differ in the `work` parameter).
//!
//! Usage: `fig8 [a|b|c|d|e|f|g|h|all] [--max-threads N] [--scale F]
//! [--stats-json FILE]` (the last needs `--features stats`; it appends
//! one JSON record per panel embedding the allocator's telemetry
//! snapshot from an instrumented run at the maximum thread count).
//!
//! Hardware note (see EXPERIMENTS.md): the paper sweeps 1–16 *physical*
//! processors; on this machine threads beyond the core count measure
//! preemption-tolerance rather than parallel speedup — which still
//! separates the lock-free allocator (immune) from the lock-based ones
//! (lock-holder preemption stalls).

use bench::table::{fmt_speedup, Table};
use bench::sweep::run_workload_best;
use bench::{AllocatorKind, Scale, Workload};

fn main() {
    let mut panels: Vec<char> = Vec::new();
    let mut max_threads = 8usize;
    let mut scale = 0.3f64;
    let mut reps = 2usize;
    let mut stats_json: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-threads" => {
                i += 1;
                max_threads = args[i].parse().expect("--max-threads takes an integer");
            }
            "--stats-json" => {
                i += 1;
                stats_json = Some(args[i].clone());
            }
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            "all" => panels.extend('a'..='h'),
            p if p.len() == 1 && ('a'..='h').contains(&p.chars().next().unwrap()) => {
                panels.push(p.chars().next().unwrap());
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    if panels.is_empty() {
        panels.extend('a'..='h');
    }
    let scale = Scale(scale);

    for &panel in &panels {
        let w = Workload::from_panel(panel).unwrap();
        println!("\nFigure 8({panel}): {} — speedup over contention-free libc", w.label());
        let baseline = run_workload_best(w, AllocatorKind::Libc, 1, 1, scale, reps);
        let mut t = Table::new(["threads", "new", "hoard", "ptmalloc", "libc"]);
        for threads in 1..=max_threads {
            let mut cells = vec![threads.to_string()];
            for kind in AllocatorKind::all() {
                let r = run_workload_best(w, kind, threads.max(2), threads, scale, reps);
                cells.push(fmt_speedup(r.speedup_over(&baseline)));
            }
            t.row(cells);
        }
        println!("{}", t.render());
    }
    println!(
        "shape check vs paper: 'new' >= others at every thread count; libc\n\
         degrades under contention; ptmalloc trails on larson; hoard trails\n\
         on producer-consumer."
    );

    if let Some(path) = &stats_json {
        #[cfg(feature = "stats")]
        {
            let records: Vec<String> = panels
                .iter()
                .map(|&p| {
                    let w = Workload::from_panel(p).unwrap();
                    bench::stats_json_record("fig8", w, max_threads.max(2), max_threads, scale)
                })
                .collect();
            bench::write_stats_json(path, &records);
        }
        #[cfg(not(feature = "stats"))]
        bench::write_stats_json(path, &[]);
    }
}
