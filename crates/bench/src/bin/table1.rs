//! Regenerates **Table 1**: "Contention-free speedup over libc malloc"
//! for Linux scalability, Threadtest, and Larson (one worker thread,
//! after spawning a dead thread per the paper's footnote 4).
//!
//! Usage: `table1 [--scale F] [--stats-json FILE]` (the latter needs
//! `--features stats`; it appends one JSON record per workload
//! embedding the allocator's telemetry snapshot).

use bench::table::{fmt_speedup, Table};
use bench::sweep::run_workload_best;
use bench::{AllocatorKind, Scale, Workload};

/// The paper's POWER4 measurements, for side-by-side comparison.
fn paper_reference(w: Workload) -> (&'static str, &'static str, &'static str) {
    match w {
        Workload::LinuxScalability => ("2.75", "1.38", "1.92"),
        Workload::Threadtest => ("2.35", "1.23", "1.97"),
        Workload::Larson => ("2.95", "2.37", "2.67"),
        _ => unreachable!(),
    }
}

fn main() {
    let mut scale = 1.0f64;
    let mut reps = 3usize;
    let mut stats_json: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats-json" => {
                i += 1;
                stats_json = Some(args[i].clone());
            }
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let scale = Scale(scale);

    println!("Table 1: contention-free speedup over libc malloc (1 thread)");
    println!("paper columns are the POWER4 measurements for reference\n");

    let workloads = [Workload::LinuxScalability, Workload::Threadtest, Workload::Larson];
    let mut t = Table::new([
        "benchmark",
        "new",
        "hoard",
        "ptmalloc",
        "new(paper)",
        "hoard(paper)",
        "pt(paper)",
        "libc ns/op",
        "new ns/op",
    ]);
    for w in workloads {
        let baseline = run_workload_best(w, AllocatorKind::Libc, 1, 1, scale, reps);
        let mut speedups = Vec::new();
        let mut new_ns = 0.0;
        for kind in [AllocatorKind::Lf, AllocatorKind::Hoard, AllocatorKind::Ptmalloc] {
            let r = run_workload_best(w, kind, 1, 1, scale, reps);
            if kind == AllocatorKind::Lf {
                new_ns = r.ns_per_op();
            }
            speedups.push(r.speedup_over(&baseline));
        }
        let (p_new, p_hoard, p_pt) = paper_reference(w);
        t.row([
            w.label(),
            fmt_speedup(speedups[0]),
            fmt_speedup(speedups[1]),
            fmt_speedup(speedups[2]),
            p_new.to_string(),
            p_hoard.to_string(),
            p_pt.to_string(),
            format!("{:.0}", baseline.ns_per_op()),
            format!("{new_ns:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "shape check: 'new' should lead every row (paper: lowest contention-free\n\
         latency among the allocators by significant margins)."
    );

    if let Some(path) = &stats_json {
        #[cfg(feature = "stats")]
        {
            let records: Vec<String> = workloads
                .iter()
                .map(|&w| bench::stats_json_record("table1", w, 1, 1, scale))
                .collect();
            bench::write_stats_json(path, &records);
        }
        #[cfg(not(feature = "stats"))]
        bench::write_stats_json(path, &[]);
    }
}
