//! Regenerates the **§4.2.5 space-efficiency experiment**: "the maximum
//! space used by our allocator, Hoard, and Ptmalloc when running the
//! benchmarks that allocate a large number of blocks: Threadtest,
//! Larson, and Producer-consumer."
//!
//! Live sets are sized well above the 1 MiB growth granularity shared by
//! all four allocators, so the measured peaks reflect allocation policy
//! (superblock slack, arena fragmentation, per-block overhead) rather
//! than the growth unit.
//!
//! Paper shape: New ≲ Hoard < Ptmalloc, with Ptmalloc/New peak ratios
//! between 1.16 (Threadtest) and 3.83 (Larson) at 16 processors.
//!
//! Usage: `space [--threads N] [--scale F]`.

use bench::registry::{make_allocator, AllocatorKind};
use bench::table::{fmt_mib, fmt_speedup, Table};
use std::sync::Arc;

fn main() {
    let mut threads = 8usize;
    let mut scale = 1.0f64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads takes an integer");
            }
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    println!("§4.2.5 space efficiency: peak OS memory while running each benchmark");
    println!("({threads} threads; ratios are peak(allocator)/peak(new))\n");

    // (label, runner): each runner drives a workload with a live set of
    // several MiB.
    let cases: Vec<(&str, Box<dyn Fn(bench::DynAlloc)>)> = vec![
        (
            "threadtest (50k live/thread)",
            Box::new(move |a| {
                // 50k simultaneous 8-byte blocks per thread.
                let iters = (2.0 * scale).ceil() as u64;
                workloads::threadtest::run(Arc::new(a), threads, iters, 50_000);
            }),
        ),
        (
            "larson (8k slots/thread)",
            Box::new(move |a| {
                let pairs = (20_000.0 * scale) as u64;
                workloads::larson::run(Arc::new(a), threads, 8_192, pairs, 0x5AAE);
            }),
        ),
        (
            "producer-consumer (work=500)",
            Box::new(move |a| {
                let params = workloads::producer_consumer::Params {
                    database_size: 1 << 20,
                    tasks: (10_000.0 * scale) as u64,
                    work: 500,
                    seed: 0x5AAE,
                };
                workloads::producer_consumer::run(Arc::new(a), threads, params);
            }),
        ),
    ];

    let mut t = Table::new([
        "benchmark",
        "new MiB",
        "hoard MiB",
        "pt MiB",
        "libc MiB",
        "hoard/new",
        "pt/new",
    ]);
    for (label, runner) in cases {
        let mut peaks = Vec::new();
        for kind in AllocatorKind::all() {
            // A fresh allocator per run so peaks are per-benchmark.
            let alloc = make_allocator(kind, threads);
            runner(alloc.clone());
            peaks.push(alloc.stats().peak_bytes);
        }
        let new_peak = peaks[0].max(1);
        t.row([
            label.to_string(),
            fmt_mib(peaks[0]),
            fmt_mib(peaks[1]),
            fmt_mib(peaks[2]),
            fmt_mib(peaks[3]),
            fmt_speedup(peaks[1] as f64 / new_peak as f64),
            fmt_speedup(peaks[2] as f64 / new_peak as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "shape check: pt/new > 1 (paper: 1.16 on threadtest up to 3.83 on\n\
         larson); hoard/new near or slightly above 1 (paper: new\n\
         'consistently slightly less than' hoard)."
    );
}
