//! Workload dispatch and scaling.

use crate::registry::DynAlloc;
use workloads::producer_consumer::Params;
use workloads::WorkloadResult;

/// The benchmarks of §4.1 (Figure 8's panels a–h).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Fig. 8(a).
    LinuxScalability,
    /// Fig. 8(b).
    Threadtest,
    /// Fig. 8(c).
    ActiveFalse,
    /// Fig. 8(d).
    PassiveFalse,
    /// Fig. 8(e).
    Larson,
    /// Fig. 8(f–h); the payload is the `work` parameter (500/750/1000).
    ProducerConsumer(u32),
}

impl Workload {
    /// Panel letter → workload.
    pub fn from_panel(p: char) -> Option<Workload> {
        Some(match p {
            'a' => Workload::LinuxScalability,
            'b' => Workload::Threadtest,
            'c' => Workload::ActiveFalse,
            'd' => Workload::PassiveFalse,
            'e' => Workload::Larson,
            'f' => Workload::ProducerConsumer(500),
            'g' => Workload::ProducerConsumer(750),
            'h' => Workload::ProducerConsumer(1000),
            _ => return None,
        })
    }

    /// Report label.
    pub fn label(self) -> String {
        match self {
            Workload::LinuxScalability => "linux-scalability".into(),
            Workload::Threadtest => "threadtest".into(),
            Workload::ActiveFalse => "active-false".into(),
            Workload::PassiveFalse => "passive-false".into(),
            Workload::Larson => "larson".into(),
            Workload::ProducerConsumer(w) => format!("producer-consumer(work={w})"),
        }
    }
}

/// A multiplier over the harness defaults. `Scale(1.0)` finishes each
/// (workload, allocator, threads) cell in well under a second on one
/// core; the paper's own op counts correspond to roughly `Scale(50.0)`.
#[derive(Clone, Copy, Debug)]
pub struct Scale(pub f64);

impl Scale {
    fn apply(self, base: u64) -> u64 {
        ((base as f64 * self.0) as u64).max(1)
    }
}

/// Runs one workload on one allocator with `threads` threads.
pub fn run_workload(
    w: Workload,
    alloc: DynAlloc,
    threads: usize,
    scale: Scale,
) -> WorkloadResult {
    workloads::common::defeat_single_thread_bypass();
    // The workload entry points are generic over a sized `A: RawMalloc`;
    // an `Arc<dyn RawMalloc>` is itself such an `A` when re-wrapped.
    let alloc = std::sync::Arc::new(alloc);
    match w {
        Workload::LinuxScalability => {
            // Paper: 10M pairs/thread. Base: 100k.
            workloads::linux_scalability::run(alloc, threads, scale.apply(100_000))
        }
        Workload::Threadtest => {
            // Paper: 100 iterations × 100k blocks. Base: 10 × 10k.
            workloads::threadtest::run(alloc, threads, scale.apply(10), 10_000)
        }
        Workload::ActiveFalse => {
            // Paper: 10k pairs × 1000 writes/byte. Base: 2k × 100.
            workloads::false_sharing::run_active(alloc, threads, scale.apply(2_000), 100)
        }
        Workload::PassiveFalse => {
            workloads::false_sharing::run_passive(alloc, threads, scale.apply(2_000), 100)
        }
        Workload::Larson => {
            // Paper: 1024 slots/thread, 30 s. Base: 1024 slots, 50k pairs.
            workloads::larson::run(alloc, threads, 1024, scale.apply(50_000), 0xA11C)
        }
        Workload::ProducerConsumer(work) => {
            // Paper: 1M-item database, 30 s. Base: 1M items, 5k tasks.
            let params = Params {
                database_size: 1 << 20,
                tasks: scale.apply(5_000),
                work,
                seed: 0xBEEF,
            };
            workloads::producer_consumer::run(alloc, threads, params)
        }
    }
}

/// Runs `reps` repetitions of a workload on *fresh* allocators and
/// returns the best (highest-throughput) run — the standard defense
/// against scheduler noise on a shared machine; the paper's fixed
/// 30-second phases serve the same purpose.
pub fn run_workload_best(
    w: Workload,
    kind: crate::registry::AllocatorKind,
    heaps: usize,
    threads: usize,
    scale: Scale,
    reps: usize,
) -> WorkloadResult {
    let mut best: Option<WorkloadResult> = None;
    for _ in 0..reps.max(1) {
        let alloc = crate::registry::make_allocator(kind, heaps);
        let r = run_workload(w, alloc, threads, scale);
        best = Some(match best {
            Some(b) if b.throughput() >= r.throughput() => b,
            _ => r,
        });
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{make_allocator, AllocatorKind};

    #[test]
    fn panel_mapping_is_complete() {
        for p in 'a'..='h' {
            assert!(Workload::from_panel(p).is_some(), "panel {p}");
        }
        assert!(Workload::from_panel('z').is_none());
    }

    #[test]
    fn tiny_run_of_every_workload() {
        for p in 'a'..='h' {
            let w = Workload::from_panel(p).unwrap();
            let alloc = make_allocator(AllocatorKind::Lf, 2);
            let r = run_workload(w, alloc, 2, Scale(0.01));
            assert!(r.ops > 0, "{}", w.label());
        }
    }

    #[test]
    fn scale_multiplies() {
        assert_eq!(Scale(2.0).apply(10), 20);
        assert_eq!(Scale(0.001).apply(10), 1, "clamped to at least 1");
    }
}
