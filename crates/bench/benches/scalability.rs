//! Quick scalability smoke over the Figure 8 sweeps (small op counts;
//! the full parameter sweep lives in the `fig8` binary).
//!
//! Run with `cargo bench -p bench --bench scalability`. Self-contained
//! harness (median of repeated runs) so benches build offline.

use bench::{make_allocator, run_workload, AllocatorKind, Scale, Workload};
use std::time::Duration;

/// Runs `run` a few times and prints the median wall time.
fn report<F: FnMut() -> Duration>(name: &str, mut run: F) {
    const SAMPLES: usize = 5;
    let mut times = [Duration::ZERO; SAMPLES];
    for t in times.iter_mut() {
        *t = run();
    }
    times.sort();
    println!("{name:<44} {:10.2?} median", times[SAMPLES / 2]);
}

fn scalability() {
    println!("-- linux-scalability --");
    for kind in AllocatorKind::all() {
        for threads in [1usize, 2, 4] {
            report(&format!("{}/{}T", kind.label(), threads), || {
                let alloc = make_allocator(kind, threads.max(2));
                run_workload(Workload::LinuxScalability, alloc, threads, Scale(0.02)).elapsed
            });
        }
    }
}

fn producer_consumer() {
    println!("-- producer-consumer --");
    for kind in AllocatorKind::all() {
        report(&format!("{}/3T", kind.label()), || {
            let alloc = make_allocator(kind, 3);
            run_workload(Workload::ProducerConsumer(500), alloc, 3, Scale(0.05)).elapsed
        });
    }
}

fn main() {
    scalability();
    producer_consumer();
}
