//! Criterion wrapper over the Figure 8 sweeps (small op counts; the
//! full parameter sweep lives in the `fig8` binary).
//!
//! Run with `cargo bench -p bench --bench scalability`.

use bench::{make_allocator, run_workload, AllocatorKind, Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("linux-scalability");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for kind in AllocatorKind::all() {
        for threads in [1usize, 2, 4] {
            g.bench_function(format!("{}/{}T", kind.label(), threads), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let alloc = make_allocator(kind, threads.max(2));
                        let r = run_workload(
                            Workload::LinuxScalability,
                            alloc,
                            threads,
                            Scale(0.02),
                        );
                        total += r.elapsed;
                    }
                    total
                })
            });
        }
    }
    g.finish();
}

fn producer_consumer(c: &mut Criterion) {
    let mut g = c.benchmark_group("producer-consumer");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for kind in AllocatorKind::all() {
        g.bench_function(format!("{}/3T", kind.label()), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let alloc = make_allocator(kind, 3);
                    let r =
                        run_workload(Workload::ProducerConsumer(500), alloc, 3, Scale(0.05));
                    total += r.elapsed;
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, scalability, producer_consumer);
criterion_main!(benches);
