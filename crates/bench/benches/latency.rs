//! Micro-benchmarks for §4.2.1: contention-free latency.
//!
//! The paper's yardsticks:
//!
//! * a malloc/free pair of 8-byte blocks per allocator (New: 282 ns on
//!   POWER4 in Linux scalability; New beats Hoard/Ptmalloc by ~2×);
//! * a lightweight lock acquire/release pair (165 ns on POWER4) — the
//!   floor for any lock-based allocator: "it is highly unlikely if not
//!   impossible for a lock-based allocator (without per-thread private
//!   heaps) to have lower latency than our lock-free allocator".
//!
//! Run with `cargo bench -p bench --bench latency`. Self-contained
//! harness (median of timed batches) so benches build offline.

use bench::{make_allocator, AllocatorKind};
use malloc_api::sync::Mutex;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Runs `op` in timed batches and prints the median per-op nanoseconds.
fn report<F: FnMut()>(name: &str, mut op: F) {
    const BATCH: u32 = 10_000;
    const SAMPLES: usize = 31;
    // Warm up (fills caches, faults pages, installs TLS).
    for _ in 0..BATCH {
        op();
    }
    let mut per_op = [0f64; SAMPLES];
    for sample in per_op.iter_mut() {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            op();
        }
        *sample = t0.elapsed().as_nanos() as f64 / BATCH as f64;
    }
    per_op.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("{name:<44} {:10.1} ns/op", per_op[SAMPLES / 2]);
}

fn pair_latency() {
    println!("-- malloc-free-pair-8B --");
    for kind in AllocatorKind::all() {
        let alloc = make_allocator(kind, 1);
        report(kind.label(), || unsafe {
            let p = alloc.malloc(black_box(8));
            core::ptr::write_volatile(p, 1);
            alloc.free(p);
        });
    }
}

fn yardsticks() {
    println!("-- yardsticks --");
    // The paper's "lightweight test-and-set lock" pair.
    let mutex = Mutex::new(0u64);
    report("lock-acquire-release-pair", || {
        let mut v = mutex.lock();
        *v = black_box(*v).wrapping_add(1);
    });
    // A bare CAS pair (the cost model unit for the lock-free paths).
    let word = AtomicU64::new(0);
    report("cas-pair", || {
        let v = word.load(Ordering::Acquire);
        let _ = word.compare_exchange(v, v.wrapping_add(1), Ordering::AcqRel, Ordering::Acquire);
    });
}

fn size_sweep() {
    // Latency across the size-class ladder and into the large path.
    println!("-- lfmalloc-size-sweep --");
    let alloc = make_allocator(AllocatorKind::Lf, 1);
    for size in [8usize, 64, 256, 1024, 4096, 8000, 64 * 1024] {
        report(&format!("{size}B"), || unsafe {
            let p = alloc.malloc(black_box(size));
            core::ptr::write_volatile(p, 1);
            alloc.free(p);
        });
    }
}

fn batched_pairs() {
    // 64 allocations then 64 frees: drains the active superblock and
    // exercises the partial path (steady non-pair pattern).
    println!("-- batched-pairs-64 --");
    for kind in AllocatorKind::all() {
        let alloc = make_allocator(kind, 1);
        report(kind.label(), || unsafe {
            let mut blocks = [core::ptr::null_mut::<u8>(); 64];
            for slot in blocks.iter_mut() {
                *slot = alloc.malloc(black_box(8));
            }
            for p in blocks {
                alloc.free(p);
            }
        });
    }
}

fn main() {
    pair_latency();
    yardsticks();
    size_sweep();
    batched_pairs();
}
