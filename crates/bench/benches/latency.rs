//! Criterion micro-benchmarks for §4.2.1: contention-free latency.
//!
//! The paper's yardsticks:
//!
//! * a malloc/free pair of 8-byte blocks per allocator (New: 282 ns on
//!   POWER4 in Linux scalability; New beats Hoard/Ptmalloc by ~2×);
//! * a lightweight lock acquire/release pair (165 ns on POWER4) — the
//!   floor for any lock-based allocator: "it is highly unlikely if not
//!   impossible for a lock-based allocator (without per-thread private
//!   heaps) to have lower latency than our lock-free allocator".
//!
//! Run with `cargo bench -p bench --bench latency`.

use bench::{make_allocator, AllocatorKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};

fn pair_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("malloc-free-pair-8B");
    for kind in AllocatorKind::all() {
        let alloc = make_allocator(kind, 1);
        g.bench_function(kind.label(), |b| {
            b.iter(|| unsafe {
                let p = alloc.malloc(black_box(8));
                core::ptr::write_volatile(p, 1);
                alloc.free(p);
            })
        });
    }
    g.finish();
}

fn yardsticks(c: &mut Criterion) {
    let mut g = c.benchmark_group("yardsticks");
    // The paper's "lightweight test-and-set lock" pair.
    let mutex = parking_lot::Mutex::new(0u64);
    g.bench_function("lock-acquire-release-pair", |b| {
        b.iter(|| {
            let mut v = mutex.lock();
            *v = black_box(*v).wrapping_add(1);
        })
    });
    // A bare CAS pair (the cost model unit for the lock-free paths).
    let word = AtomicU64::new(0);
    g.bench_function("cas-pair", |b| {
        b.iter(|| {
            let v = word.load(Ordering::Acquire);
            let _ = word.compare_exchange(v, v.wrapping_add(1), Ordering::AcqRel, Ordering::Acquire);
        })
    });
    g.finish();
}

fn size_sweep(c: &mut Criterion) {
    // Latency across the size-class ladder and into the large path.
    let mut g = c.benchmark_group("lfmalloc-size-sweep");
    let alloc = make_allocator(AllocatorKind::Lf, 1);
    for size in [8usize, 64, 256, 1024, 4096, 8000, 64 * 1024] {
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| unsafe {
                let p = alloc.malloc(black_box(size));
                core::ptr::write_volatile(p, 1);
                alloc.free(p);
            })
        });
    }
    g.finish();
}

fn remote_free_pair(c: &mut Criterion) {
    // Cross-thread pair cost: allocation here, free on a superblock that
    // is never the caller's active one (steady remote pattern).
    let mut g = c.benchmark_group("batched-pairs-64");
    for kind in AllocatorKind::all() {
        let alloc = make_allocator(kind, 1);
        g.bench_function(kind.label(), |b| {
            b.iter(|| unsafe {
                let mut blocks = [core::ptr::null_mut::<u8>(); 64];
                for slot in blocks.iter_mut() {
                    *slot = alloc.malloc(black_box(8));
                }
                for p in blocks {
                    alloc.free(p);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, pair_latency, yardsticks, size_sweep, remote_free_pair);
criterion_main!(benches);
