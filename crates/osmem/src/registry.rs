//! Lock-free span registry: the large-block side of hardened-free
//! provenance.
//!
//! Small blocks prove their provenance through the superblock hyperblock
//! registry ([`PagePool::owns`](crate::PagePool::owns)) plus descriptor
//! validation; large blocks go straight to the page source, so the
//! hardened allocator records each one here as a `(base, bytes)` span.
//! A free is then answered in three steps: *is this address inside a
//! registered span* (`span_containing`), *is it the span's real user
//! pointer* (prefix check, done by the caller), and *am I the first to
//! free it* (`remove`, a CAS — the loser of a double-free race gets
//! `false` and reports instead of double-unmapping).
//!
//! The registry is a chain of fixed-size segments allocated from the
//! *system* allocator (like the pool's `HyperRecord`s, never from the
//! allocator being built). Segments are appended when full and only
//! reclaimed on drop, so readers can walk the chain without hazard
//! pointers: a published segment never disappears. Slots are recycled
//! in place via CAS on the base word.

use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::alloc::{GlobalAlloc, Layout, System};

/// Spans per segment; a segment is ~1 KiB, and each one covers 64 live
/// large blocks, so chains stay short in practice.
const SLOTS_PER_SEGMENT: usize = 64;

struct Slot {
    /// Span base address; 0 = empty. Claimed empty→full by `insert`'s
    /// CAS, full→empty by `remove`'s CAS (the double-free arbiter).
    base: AtomicUsize,
    /// Span length in bytes; written before `base` is published.
    bytes: AtomicUsize,
}

struct Segment {
    slots: [Slot; SLOTS_PER_SEGMENT],
    next: *mut Segment,
}

/// Lock-free registry of `(base, bytes)` spans. See the module docs.
#[derive(Debug)]
pub struct SpanRegistry {
    head: AtomicPtr<Segment>,
    len: AtomicUsize,
}

unsafe impl Send for SpanRegistry {}
unsafe impl Sync for SpanRegistry {}

impl SpanRegistry {
    /// An empty registry. Allocates nothing until the first `insert`.
    pub const fn new() -> Self {
        SpanRegistry { head: AtomicPtr::new(core::ptr::null_mut()), len: AtomicUsize::new(0) }
    }

    /// Registers the span `[base, base + bytes)`. Returns `false` only
    /// when a fresh segment was needed and the system allocator refused —
    /// callers treat that as OOM for the allocation being registered, so
    /// the registry never silently under-covers (`base` and `bytes` must
    /// be nonzero).
    pub fn insert(&self, base: usize, bytes: usize) -> bool {
        debug_assert!(base != 0 && bytes != 0);
        loop {
            let mut seg = self.head.load(Ordering::Acquire);
            let first = seg;
            while !seg.is_null() {
                let s = unsafe { &*seg };
                for slot in &s.slots {
                    if slot.base.load(Ordering::Relaxed) == 0 {
                        // Publish bytes first so any reader that wins the
                        // base load sees a coherent pair.
                        slot.bytes.store(bytes, Ordering::Release);
                        if slot
                            .base
                            .compare_exchange(0, base, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            self.len.fetch_add(1, Ordering::AcqRel);
                            return true;
                        }
                    }
                }
                seg = s.next;
            }
            // Every slot in every segment is taken: prepend a new segment
            // with the span pre-installed in slot 0.
            let raw = unsafe { System.alloc_zeroed(Layout::new::<Segment>()) } as *mut Segment;
            if raw.is_null() {
                return false;
            }
            unsafe {
                (*raw).slots[0].bytes.store(bytes, Ordering::Relaxed);
                (*raw).slots[0].base.store(base, Ordering::Relaxed);
                (*raw).next = first;
            }
            if self
                .head
                .compare_exchange(first, raw, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.len.fetch_add(1, Ordering::AcqRel);
                return true;
            }
            // Lost the prepend race: another thread published a segment
            // (with free slots). Give this one back and rescan.
            unsafe { System.dealloc(raw as *mut u8, Layout::new::<Segment>()) };
        }
    }

    /// Unregisters the span starting at exactly `base`. Returns `true`
    /// for the (single) caller that wins the CAS; a concurrent or
    /// repeated remove of the same span gets `false` — the double-free
    /// signal.
    pub fn remove(&self, base: usize) -> bool {
        let mut seg = self.head.load(Ordering::Acquire);
        while !seg.is_null() {
            let s = unsafe { &*seg };
            for slot in &s.slots {
                if slot.base.load(Ordering::Acquire) == base
                    && slot
                        .base
                        .compare_exchange(base, 0, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    self.len.fetch_sub(1, Ordering::AcqRel);
                    return true;
                }
            }
            seg = s.next;
        }
        false
    }

    /// The registered span containing `addr`, if any, as `(base, bytes)`.
    ///
    /// Best-effort under concurrent slot recycling (a slot observed
    /// mid-reuse is re-checked and skipped on mismatch); exact whenever
    /// the span owning `addr` is not being concurrently inserted or
    /// removed — which is the case for any pointer it is legal to free.
    pub fn span_containing(&self, addr: usize) -> Option<(usize, usize)> {
        let mut seg = self.head.load(Ordering::Acquire);
        while !seg.is_null() {
            let s = unsafe { &*seg };
            for slot in &s.slots {
                let base = slot.base.load(Ordering::Acquire);
                if base != 0 {
                    let bytes = slot.bytes.load(Ordering::Acquire);
                    // Reject torn (base, bytes) pairs from slot reuse.
                    if slot.base.load(Ordering::Acquire) == base
                        && addr >= base
                        && addr - base < bytes
                    {
                        return Some((base, bytes));
                    }
                }
            }
            seg = s.next;
        }
        None
    }

    /// Calls `f` with every registered `(base, bytes)` span without
    /// allocating (heap-dump and crash-report enumeration). Same
    /// best-effort tolerance of concurrent slot recycling as
    /// [`span_containing`](Self::span_containing): a torn pair is
    /// skipped, a settled span is always visited.
    pub fn for_each(&self, mut f: impl FnMut(usize, usize)) {
        let mut seg = self.head.load(Ordering::Acquire);
        while !seg.is_null() {
            let s = unsafe { &*seg };
            for slot in &s.slots {
                let base = slot.base.load(Ordering::Acquire);
                if base != 0 {
                    let bytes = slot.bytes.load(Ordering::Acquire);
                    if slot.base.load(Ordering::Acquire) == base {
                        f(base, bytes);
                    }
                }
            }
            seg = s.next;
        }
    }

    /// Number of spans currently registered.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no spans are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SpanRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SpanRegistry {
    fn drop(&mut self) {
        let mut seg = *self.head.get_mut();
        while !seg.is_null() {
            let next = unsafe { (*seg).next };
            unsafe { System.dealloc(seg as *mut u8, Layout::new::<Segment>()) };
            seg = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let r = SpanRegistry::new();
        assert!(r.is_empty());
        assert!(r.insert(0x10_000, 0x2000));
        assert_eq!(r.len(), 1);
        assert_eq!(r.span_containing(0x10_000), Some((0x10_000, 0x2000)));
        assert_eq!(r.span_containing(0x11_FFF), Some((0x10_000, 0x2000)));
        assert_eq!(r.span_containing(0x12_000), None, "end is exclusive");
        assert_eq!(r.span_containing(0xF_FFF), None);
        assert!(r.remove(0x10_000));
        assert!(!r.remove(0x10_000), "second remove loses: the double-free signal");
        assert!(r.is_empty());
        assert_eq!(r.span_containing(0x10_000), None);
    }

    #[test]
    fn grows_past_one_segment_and_recycles_slots() {
        let r = SpanRegistry::new();
        let n = SLOTS_PER_SEGMENT * 3 + 5;
        for i in 0..n {
            assert!(r.insert((i + 1) * 0x10_000, 0x1000));
        }
        assert_eq!(r.len(), n);
        for i in 0..n {
            assert_eq!(
                r.span_containing((i + 1) * 0x10_000 + 0xFFF),
                Some(((i + 1) * 0x10_000, 0x1000))
            );
        }
        for i in 0..n {
            assert!(r.remove((i + 1) * 0x10_000));
        }
        assert!(r.is_empty());
        // Slots are reused in place: reinserting must not grow the chain
        // unboundedly (indirectly checked by lookups still succeeding).
        for i in 0..n {
            assert!(r.insert((i + 1) * 0x10_000, 0x2000));
        }
        assert_eq!(r.span_containing(0x10_000 + 0x1FFF), Some((0x10_000, 0x2000)));
        for i in 0..n {
            assert!(r.remove((i + 1) * 0x10_000));
        }
    }

    #[test]
    fn concurrent_double_remove_has_one_winner() {
        let r = Arc::new(SpanRegistry::new());
        for round in 0..50 {
            let base = (round + 1) * 0x100_000;
            assert!(r.insert(base, 0x4000));
            let barrier = Arc::new(std::sync::Barrier::new(4));
            let wins: usize = (0..4)
                .map(|_| {
                    let r = Arc::clone(&r);
                    let b = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        b.wait();
                        r.remove(base) as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum();
            assert_eq!(wins, 1, "exactly one racer may win the remove CAS");
        }
        assert!(r.is_empty());
    }

    #[test]
    fn concurrent_insert_remove_churn() {
        let r = Arc::new(SpanRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let base = (t + 1) * 0x1000_0000 + (i + 1) * 0x10_000;
                        assert!(r.insert(base, 0x8000));
                        assert_eq!(r.span_containing(base + 0x7FFF), Some((base, 0x8000)));
                        assert!(r.remove(base));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(r.is_empty());
    }
}
