//! Page sources: where allocators get raw memory runs.

use malloc_api::layout::{align_up, is_aligned};
use malloc_api::stats::UsageCounter;
use malloc_api::AllocStats;
use std::alloc::{GlobalAlloc, Layout, System};

/// Assumed OS page size. The substrate rounds all requests up to this.
pub const PAGE_SIZE: usize = 4096;

/// A supplier of page-aligned memory runs — the `mmap`/`munmap` of this
/// reproduction.
///
/// # Safety
///
/// Implementations must return either null or a run of at least `size`
/// bytes aligned to `align`, exclusively owned by the caller until the
/// matching [`dealloc_pages`](Self::dealloc_pages) with identical
/// `size`/`align`.
pub unsafe trait PageSource: Sync {
    /// Obtains `size` bytes aligned to `align` (both multiples of
    /// [`PAGE_SIZE`]; `align` a power of two). Returns null on failure.
    ///
    /// # Safety
    ///
    /// Caller must pass the same `size` and `align` to `dealloc_pages`.
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8;

    /// Returns a run previously obtained from `alloc_pages`.
    ///
    /// # Safety
    ///
    /// `ptr`/`size`/`align` must match a live prior `alloc_pages`.
    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize);

    /// Accounting snapshot (zero for non-counting sources).
    fn stats(&self) -> AllocStats {
        AllocStats::default()
    }

    /// Changes the protection of `len` bytes at `ptr` (both multiples of
    /// [`PAGE_SIZE`], inside a live run from this source): `readwrite ==
    /// false` revokes all access (`PROT_NONE` guard page), `true`
    /// restores read/write. Returns `true` on success; the default says
    /// the source cannot protect pages, and callers degrade gracefully
    /// (the hardened allocator falls back to canary-only guards).
    ///
    /// # Safety
    ///
    /// The range must lie within a live `alloc_pages` run, and the caller
    /// must restore read/write before the run is deallocated.
    unsafe fn protect_pages(&self, ptr: *mut u8, len: usize, readwrite: bool) -> bool {
        let _ = (ptr, len, readwrite);
        false
    }

    /// Whether runs returned by [`alloc_pages`](Self::alloc_pages) are
    /// guaranteed zero-filled (anonymous-mmap semantics). `calloc` fast
    /// paths may skip their memset only when this returns `true` *and*
    /// the memory provably never passed through a recycling pool. The
    /// conservative default is `false`.
    fn zeroes_fresh_pages(&self) -> bool {
        false
    }
}

/// `mprotect` constants and binding (libc is linked by std on unix).
#[cfg(unix)]
mod mprotect_sys {
    pub const PROT_NONE: i32 = 0;
    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    unsafe extern "C" {
        pub fn mprotect(addr: *mut core::ffi::c_void, len: usize, prot: i32) -> i32;
    }
}

/// The default source: aligned runs from the *system* allocator.
///
/// Uses `std::alloc::System` directly (never the Rust global allocator)
/// so allocators built on it can be installed as `#[global_allocator]`.
///
/// # Fork safety
///
/// `System` routes to libc `malloc`, and glibc's `fork` runs its own
/// internal atfork handlers that reacquire the malloc arena locks in a
/// consistent state on both sides (and has since well before any
/// toolchain we target). A forked child can therefore request fresh
/// pages from this source immediately; the allocator-level recovery
/// protocol (DESIGN.md §12) only has to repair *our* structures, never
/// the page source underneath.
#[derive(Debug, Default)]
pub struct SystemSource;

impl SystemSource {
    /// Creates the source.
    pub const fn new() -> Self {
        SystemSource
    }
}

unsafe impl PageSource for SystemSource {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        debug_assert!(size > 0 && is_aligned(size, PAGE_SIZE));
        debug_assert!(align.is_power_of_two() && align >= PAGE_SIZE);
        let Ok(layout) = Layout::from_size_align(size, align) else {
            return core::ptr::null_mut();
        };
        // Anonymous mmap hands out zero-filled pages; reproduce that so
        // code above this layer can rely on the same invariant.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        let layout = Layout::from_size_align(size, align).expect("layout validated at alloc");
        unsafe { System.dealloc(ptr, layout) };
    }

    #[cfg(unix)]
    unsafe fn protect_pages(&self, ptr: *mut u8, len: usize, readwrite: bool) -> bool {
        debug_assert!(is_aligned(ptr as usize, PAGE_SIZE) && is_aligned(len, PAGE_SIZE));
        let prot = if readwrite {
            mprotect_sys::PROT_READ | mprotect_sys::PROT_WRITE
        } else {
            mprotect_sys::PROT_NONE
        };
        unsafe { mprotect_sys::mprotect(ptr as *mut core::ffi::c_void, len, prot) == 0 }
    }

    // `alloc_pages` goes through `System.alloc_zeroed` precisely so this
    // invariant holds (anonymous-mmap semantics).
    fn zeroes_fresh_pages(&self) -> bool {
        true
    }
}

/// Rounds an arbitrary byte count up to whole pages.
///
/// # Example
///
/// ```
/// use osmem::source::{pages_for, PAGE_SIZE};
/// assert_eq!(pages_for(1), PAGE_SIZE);
/// assert_eq!(pages_for(PAGE_SIZE), PAGE_SIZE);
/// assert_eq!(pages_for(PAGE_SIZE + 1), 2 * PAGE_SIZE);
/// ```
pub const fn pages_for(bytes: usize) -> usize {
    if bytes == 0 {
        PAGE_SIZE
    } else {
        align_up(bytes, PAGE_SIZE)
    }
}

/// A [`PageSource`] decorator that tracks live/peak bytes and call
/// counts — the measurement harness for §4.2.5 ("we tracked the maximum
/// space used by our allocator, Hoard, and Ptmalloc").
#[derive(Debug, Default)]
pub struct CountingSource<S> {
    inner: S,
    counter: UsageCounter,
}

impl<S> CountingSource<S> {
    /// Wraps `inner` with fresh counters.
    pub const fn new(inner: S) -> Self {
        CountingSource { inner, counter: UsageCounter::new() }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Resets the counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.counter.reset();
    }
}

unsafe impl<S: PageSource> PageSource for CountingSource<S> {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        let p = unsafe { self.inner.alloc_pages(size, align) };
        if !p.is_null() {
            self.counter.record_alloc(size);
        }
        p
    }

    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        unsafe { self.inner.dealloc_pages(ptr, size, align) };
        self.counter.record_free(size);
    }

    fn stats(&self) -> AllocStats {
        self.counter.snapshot()
    }

    unsafe fn protect_pages(&self, ptr: *mut u8, len: usize, readwrite: bool) -> bool {
        unsafe { self.inner.protect_pages(ptr, len, readwrite) }
    }

    fn zeroes_fresh_pages(&self) -> bool {
        self.inner.zeroes_fresh_pages()
    }
}

unsafe impl<S: PageSource + Send + Sync> PageSource for std::sync::Arc<S> {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        unsafe { (**self).alloc_pages(size, align) }
    }
    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        unsafe { (**self).dealloc_pages(ptr, size, align) }
    }
    fn stats(&self) -> AllocStats {
        (**self).stats()
    }
    unsafe fn protect_pages(&self, ptr: *mut u8, len: usize, readwrite: bool) -> bool {
        unsafe { (**self).protect_pages(ptr, len, readwrite) }
    }
    fn zeroes_fresh_pages(&self) -> bool {
        (**self).zeroes_fresh_pages()
    }
}

unsafe impl<S: PageSource> PageSource for &S {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        unsafe { (**self).alloc_pages(size, align) }
    }
    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        unsafe { (**self).dealloc_pages(ptr, size, align) }
    }
    fn stats(&self) -> AllocStats {
        (**self).stats()
    }
    unsafe fn protect_pages(&self, ptr: *mut u8, len: usize, readwrite: bool) -> bool {
        unsafe { (**self).protect_pages(ptr, len, readwrite) }
    }
    fn zeroes_fresh_pages(&self) -> bool {
        (**self).zeroes_fresh_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_source_alignment_honored() {
        let s = SystemSource::new();
        for &align in &[PAGE_SIZE, 16 * 1024, 1 << 20] {
            unsafe {
                let p = s.alloc_pages(align, align);
                assert!(!p.is_null());
                assert!(is_aligned(p as usize, align), "{p:p} not aligned to {align:#x}");
                // Memory is usable.
                core::ptr::write_bytes(p, 0xAB, align);
                s.dealloc_pages(p, align, align);
            }
        }
    }

    #[test]
    fn counting_source_tracks_peak() {
        let s = CountingSource::new(SystemSource::new());
        unsafe {
            let a = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            let b = s.alloc_pages(2 * PAGE_SIZE, PAGE_SIZE);
            s.dealloc_pages(a, PAGE_SIZE, PAGE_SIZE);
            let st = s.stats();
            assert_eq!(st.live_bytes, 2 * PAGE_SIZE);
            assert_eq!(st.peak_bytes, 3 * PAGE_SIZE);
            assert_eq!(st.os_allocs, 2);
            assert_eq!(st.os_frees, 1);
            s.dealloc_pages(b, 2 * PAGE_SIZE, PAGE_SIZE);
        }
        assert_eq!(s.stats().live_bytes, 0);
        s.reset_stats();
        assert_eq!(s.stats(), AllocStats::default());
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), PAGE_SIZE);
        assert_eq!(pages_for(4097), 2 * PAGE_SIZE);
        assert_eq!(pages_for(3 * PAGE_SIZE), 3 * PAGE_SIZE);
    }

    #[test]
    #[cfg(unix)]
    fn protect_pages_roundtrip() {
        let s = CountingSource::new(SystemSource::new());
        unsafe {
            let p = s.alloc_pages(4 * PAGE_SIZE, PAGE_SIZE);
            assert!(!p.is_null());
            let guard = p.add(3 * PAGE_SIZE);
            assert!(s.protect_pages(guard, PAGE_SIZE, false), "mprotect PROT_NONE failed");
            // The unguarded prefix stays usable while the guard is armed.
            core::ptr::write_bytes(p, 0x11, 3 * PAGE_SIZE);
            assert!(s.protect_pages(guard, PAGE_SIZE, true), "mprotect restore failed");
            core::ptr::write_bytes(guard, 0x22, PAGE_SIZE);
            s.dealloc_pages(p, 4 * PAGE_SIZE, PAGE_SIZE);
        }
    }

    #[test]
    fn reference_source_forwards() {
        let s = CountingSource::new(SystemSource::new());
        let r = &s;
        unsafe {
            let p = r.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(!p.is_null());
            r.dealloc_pages(p, PAGE_SIZE, PAGE_SIZE);
        }
        assert_eq!(r.stats().os_allocs, 1);
    }
}

/// A [`PageSource`] decorator that injects allocation failures
/// according to configurable *failure plans*. Used by fault-injection
/// tests to drive allocators through their out-of-memory paths.
///
/// Four plans compose — a call fails if **any** armed plan says so:
///
/// * **budget** (the constructor argument): after `budget` successful
///   allocations every further call fails until
///   [`refill`](FlakySource::refill);
/// * **every-Nth** ([`fail_every_nth`](FlakySource::fail_every_nth)):
///   deterministic periodic failure;
/// * **chance** ([`fail_with_chance`](FlakySource::fail_with_chance)):
///   probabilistic intermittent failure, drawn from a seeded splitmix64
///   PRNG so runs replay exactly from the seed;
/// * **outage** ([`fail_next`](FlakySource::fail_next)): the next `n`
///   calls fail, then the source recovers on its own (one-shot
///   recovery — no `refill` needed).
///
/// Frees are never blocked by any plan.
#[derive(Debug)]
pub struct FlakySource<S> {
    inner: S,
    /// Successful allocations left before the budget plan kicks in
    /// (decremented only by calls no other plan already failed).
    remaining: core::sync::atomic::AtomicIsize,
    /// Total `alloc_pages` calls (drives the every-Nth plan).
    calls: core::sync::atomic::AtomicU64,
    /// Period of the every-Nth plan; 0 disables it.
    nth: core::sync::atomic::AtomicU64,
    /// Failure probability as `p / 65536`; 0 disables the chance plan.
    chance: core::sync::atomic::AtomicU32,
    /// splitmix64 state for the chance plan.
    rng: core::sync::atomic::AtomicU64,
    /// Pending one-shot outage failures.
    outage: core::sync::atomic::AtomicU64,
    /// Calls denied by any plan (diagnostics for tests).
    denials: core::sync::atomic::AtomicU64,
}

impl<S> FlakySource<S> {
    /// Wraps `inner`, allowing `budget` successful allocations before
    /// the budget plan starts failing (use `isize::MAX` for "never").
    pub const fn new(inner: S, budget: isize) -> Self {
        use core::sync::atomic::{AtomicIsize, AtomicU32, AtomicU64};
        FlakySource {
            inner,
            remaining: AtomicIsize::new(budget),
            calls: AtomicU64::new(0),
            nth: AtomicU64::new(0),
            chance: AtomicU32::new(0),
            rng: AtomicU64::new(0),
            outage: AtomicU64::new(0),
            denials: AtomicU64::new(0),
        }
    }

    /// Wraps `inner` with an unlimited budget; failures come only from
    /// plans armed later.
    pub const fn reliable(inner: S) -> Self {
        Self::new(inner, isize::MAX)
    }

    /// Grants `n` more successful allocations on top of any still
    /// unconsumed (accumulated debt from past failures is forgiven, not
    /// carried). A lost-update-free read-modify-write: concurrent
    /// allocating threads can never erase a grant, and a racing `refill`
    /// can never resurrect budget that was already spent.
    pub fn refill(&self, n: isize) {
        use core::sync::atomic::Ordering;
        let _ = self.remaining.fetch_update(Ordering::AcqRel, Ordering::Acquire, |old| {
            Some(old.max(0).saturating_add(n))
        });
    }

    /// Remaining successful allocations (may be negative after
    /// failures).
    pub fn remaining(&self) -> isize {
        self.remaining.load(core::sync::atomic::Ordering::Acquire)
    }

    /// Arms the every-Nth plan: calls number N, 2N, 3N... (counting all
    /// `alloc_pages` calls since construction) fail. 0 disarms.
    pub fn fail_every_nth(&self, n: u64) {
        self.nth.store(n, core::sync::atomic::Ordering::Release);
    }

    /// Arms the chance plan: each call fails with probability
    /// `p / 65536`, decided by a splitmix64 stream starting at `seed`.
    /// `p == 0` disarms.
    pub fn fail_with_chance(&self, p: u16, seed: u64) {
        use core::sync::atomic::Ordering;
        self.rng.store(seed, Ordering::Release);
        self.chance.store(p as u32, Ordering::Release);
    }

    /// Arms a one-shot outage: the next `n` calls fail, after which the
    /// source recovers without intervention.
    pub fn fail_next(&self, n: u64) {
        self.outage.fetch_add(n, core::sync::atomic::Ordering::AcqRel);
    }

    /// Number of calls any plan has denied so far.
    pub fn denials(&self) -> u64 {
        self.denials.load(core::sync::atomic::Ordering::Acquire)
    }
}

/// splitmix64 output for state `z` (state advance is the caller's
/// golden-ratio `fetch_add`, so concurrent draws get distinct states).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

unsafe impl<S: PageSource> PageSource for FlakySource<S> {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        use core::sync::atomic::Ordering;
        let call = self.calls.fetch_add(1, Ordering::AcqRel) + 1;
        let mut fail = false;
        // One-shot outage: consume one pending failure, if any.
        if self.outage.load(Ordering::Acquire) > 0
            && self
                .outage
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |o| o.checked_sub(1))
                .is_ok()
        {
            fail = true;
        }
        let nth = self.nth.load(Ordering::Acquire);
        if !fail && nth != 0 && call % nth == 0 {
            fail = true;
        }
        let p = self.chance.load(Ordering::Acquire) as u16;
        if !fail && p != 0 {
            let prev = self.rng.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::AcqRel);
            let drawn = splitmix64_mix(prev.wrapping_add(0x9E37_79B9_7F4A_7C15));
            if ((drawn >> 48) as u16) < p {
                fail = true;
            }
        }
        // Budget is consumed only by calls no other plan already failed,
        // so plans compose without double-charging.
        if !fail && self.remaining.fetch_sub(1, Ordering::AcqRel) <= 0 {
            fail = true;
        }
        if fail {
            self.denials.fetch_add(1, Ordering::AcqRel);
            return core::ptr::null_mut();
        }
        unsafe { self.inner.alloc_pages(size, align) }
    }

    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        unsafe { self.inner.dealloc_pages(ptr, size, align) }
    }

    fn stats(&self) -> AllocStats {
        self.inner.stats()
    }

    // Protection changes are never failure-injected: like frees, they are
    // on the *give back / contain* side of the contract, and blocking
    // them would turn an injected OOM into a wild fault.
    unsafe fn protect_pages(&self, ptr: *mut u8, len: usize, readwrite: bool) -> bool {
        unsafe { self.inner.protect_pages(ptr, len, readwrite) }
    }

    // Denials return null, never dirty memory, so the inner source's
    // zeroing guarantee survives the decorator.
    fn zeroes_fresh_pages(&self) -> bool {
        self.inner.zeroes_fresh_pages()
    }
}

#[cfg(test)]
mod flaky_tests {
    use super::*;

    #[test]
    fn flaky_source_fails_after_budget() {
        let s = FlakySource::new(SystemSource::new(), 2);
        unsafe {
            let a = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            let b = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(!a.is_null() && !b.is_null());
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null(), "budget exhausted");
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null(), "stays failed");
            s.refill(1);
            let c = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(!c.is_null(), "refill revives the source");
            s.dealloc_pages(a, PAGE_SIZE, PAGE_SIZE);
            s.dealloc_pages(b, PAGE_SIZE, PAGE_SIZE);
            s.dealloc_pages(c, PAGE_SIZE, PAGE_SIZE);
        }
    }

    #[test]
    fn dealloc_always_works() {
        let s = FlakySource::new(SystemSource::new(), 1);
        unsafe {
            let a = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null());
            // Frees must never be blocked by the failure mode.
            s.dealloc_pages(a, PAGE_SIZE, PAGE_SIZE);
        }
    }

    #[test]
    fn refill_adds_to_unconsumed_budget() {
        // The grant is a read-modify-write, not a blind store: refilling
        // while budget remains must not discard the remainder.
        let s = FlakySource::new(SystemSource::new(), 5);
        unsafe {
            let a = s.alloc_pages(PAGE_SIZE, PAGE_SIZE); // remaining: 4
            s.refill(2); // remaining: 6, not 2
            assert_eq!(s.remaining(), 6);
            let mut held = vec![a];
            for _ in 0..6 {
                let p = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
                assert!(!p.is_null());
                held.push(p);
            }
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null());
            for p in held {
                s.dealloc_pages(p, PAGE_SIZE, PAGE_SIZE);
            }
        }
    }

    #[test]
    fn refill_forgives_debt_but_never_loses_grants() {
        let s = FlakySource::new(SystemSource::new(), 0);
        unsafe {
            // Run up a debt of 3 failed calls.
            for _ in 0..3 {
                assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null());
            }
            assert!(s.remaining() < 0);
            s.refill(2); // debt forgiven: exactly 2 successes
            let a = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            let b = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(!a.is_null() && !b.is_null());
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null());
            s.dealloc_pages(a, PAGE_SIZE, PAGE_SIZE);
            s.dealloc_pages(b, PAGE_SIZE, PAGE_SIZE);
        }
    }

    #[test]
    fn every_nth_plan_fails_periodically() {
        let s = FlakySource::reliable(SystemSource::new());
        s.fail_every_nth(3);
        unsafe {
            let pattern: Vec<bool> = (0..9)
                .map(|_| {
                    let p = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
                    if !p.is_null() {
                        s.dealloc_pages(p, PAGE_SIZE, PAGE_SIZE);
                    }
                    p.is_null()
                })
                .collect();
            assert_eq!(
                pattern,
                [false, false, true, false, false, true, false, false, true]
            );
        }
        assert_eq!(s.denials(), 3);
    }

    #[test]
    fn chance_plan_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let s = FlakySource::reliable(SystemSource::new());
            s.fail_with_chance(32768, seed);
            (0..64)
                .map(|_| unsafe {
                    let p = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
                    if !p.is_null() {
                        s.dealloc_pages(p, PAGE_SIZE, PAGE_SIZE);
                    }
                    p.is_null()
                })
                .collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ");
        let fails = a.iter().filter(|x| **x).count();
        assert!(fails > 8 && fails < 56, "p=0.5 should fail roughly half: {fails}/64");
    }

    #[test]
    fn outage_plan_recovers_on_its_own() {
        let s = FlakySource::reliable(SystemSource::new());
        s.fail_next(2);
        unsafe {
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null());
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null());
            let p = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(!p.is_null(), "outage must clear itself after n failures");
            s.dealloc_pages(p, PAGE_SIZE, PAGE_SIZE);
        }
        assert_eq!(s.denials(), 2);
    }

    #[test]
    fn concurrent_refill_never_loses_grants() {
        // 4 threads each grant 100 one at a time while 4 threads consume;
        // total successes must equal total grants plus the initial budget.
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let s = Arc::new(FlakySource::new(SystemSource::new(), 0));
        let successes = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.refill(1);
                    std::thread::yield_now();
                }
            }));
        }
        for _ in 0..4 {
            let s = Arc::clone(&s);
            let successes = Arc::clone(&successes);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    unsafe {
                        let p = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
                        if !p.is_null() {
                            successes.fetch_add(1, Ordering::AcqRel);
                            s.dealloc_pages(p, PAGE_SIZE, PAGE_SIZE);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // `refill` forgives debt, so some grants may legally be spent
        // covering earlier failures — but successes can never exceed
        // grants, and the atomic RMW guarantees at least one success
        // (blind-store refill could lose every grant).
        let got = successes.load(Ordering::Acquire);
        assert!(got <= 400, "more successes than grants: {got}");
        assert!(got > 0, "all grants lost");
    }
}
