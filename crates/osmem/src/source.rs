//! Page sources: where allocators get raw memory runs.

use malloc_api::layout::{align_up, is_aligned};
use malloc_api::stats::UsageCounter;
use malloc_api::AllocStats;
use std::alloc::{GlobalAlloc, Layout, System};

/// Assumed OS page size. The substrate rounds all requests up to this.
pub const PAGE_SIZE: usize = 4096;

/// A supplier of page-aligned memory runs — the `mmap`/`munmap` of this
/// reproduction.
///
/// # Safety
///
/// Implementations must return either null or a run of at least `size`
/// bytes aligned to `align`, exclusively owned by the caller until the
/// matching [`dealloc_pages`](Self::dealloc_pages) with identical
/// `size`/`align`.
pub unsafe trait PageSource: Sync {
    /// Obtains `size` bytes aligned to `align` (both multiples of
    /// [`PAGE_SIZE`]; `align` a power of two). Returns null on failure.
    ///
    /// # Safety
    ///
    /// Caller must pass the same `size` and `align` to `dealloc_pages`.
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8;

    /// Returns a run previously obtained from `alloc_pages`.
    ///
    /// # Safety
    ///
    /// `ptr`/`size`/`align` must match a live prior `alloc_pages`.
    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize);

    /// Accounting snapshot (zero for non-counting sources).
    fn stats(&self) -> AllocStats {
        AllocStats::default()
    }
}

/// The default source: aligned runs from the *system* allocator.
///
/// Uses `std::alloc::System` directly (never the Rust global allocator)
/// so allocators built on it can be installed as `#[global_allocator]`.
#[derive(Debug, Default)]
pub struct SystemSource;

impl SystemSource {
    /// Creates the source.
    pub const fn new() -> Self {
        SystemSource
    }
}

unsafe impl PageSource for SystemSource {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        debug_assert!(size > 0 && is_aligned(size, PAGE_SIZE));
        debug_assert!(align.is_power_of_two() && align >= PAGE_SIZE);
        let Ok(layout) = Layout::from_size_align(size, align) else {
            return core::ptr::null_mut();
        };
        // Anonymous mmap hands out zero-filled pages; reproduce that so
        // code above this layer can rely on the same invariant.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        let layout = Layout::from_size_align(size, align).expect("layout validated at alloc");
        unsafe { System.dealloc(ptr, layout) };
    }
}

/// Rounds an arbitrary byte count up to whole pages.
///
/// # Example
///
/// ```
/// use osmem::source::{pages_for, PAGE_SIZE};
/// assert_eq!(pages_for(1), PAGE_SIZE);
/// assert_eq!(pages_for(PAGE_SIZE), PAGE_SIZE);
/// assert_eq!(pages_for(PAGE_SIZE + 1), 2 * PAGE_SIZE);
/// ```
pub const fn pages_for(bytes: usize) -> usize {
    if bytes == 0 {
        PAGE_SIZE
    } else {
        align_up(bytes, PAGE_SIZE)
    }
}

/// A [`PageSource`] decorator that tracks live/peak bytes and call
/// counts — the measurement harness for §4.2.5 ("we tracked the maximum
/// space used by our allocator, Hoard, and Ptmalloc").
#[derive(Debug, Default)]
pub struct CountingSource<S> {
    inner: S,
    counter: UsageCounter,
}

impl<S> CountingSource<S> {
    /// Wraps `inner` with fresh counters.
    pub const fn new(inner: S) -> Self {
        CountingSource { inner, counter: UsageCounter::new() }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Resets the counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.counter.reset();
    }
}

unsafe impl<S: PageSource> PageSource for CountingSource<S> {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        let p = unsafe { self.inner.alloc_pages(size, align) };
        if !p.is_null() {
            self.counter.record_alloc(size);
        }
        p
    }

    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        unsafe { self.inner.dealloc_pages(ptr, size, align) };
        self.counter.record_free(size);
    }

    fn stats(&self) -> AllocStats {
        self.counter.snapshot()
    }
}

unsafe impl<S: PageSource + Send + Sync> PageSource for std::sync::Arc<S> {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        unsafe { (**self).alloc_pages(size, align) }
    }
    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        unsafe { (**self).dealloc_pages(ptr, size, align) }
    }
    fn stats(&self) -> AllocStats {
        (**self).stats()
    }
}

unsafe impl<S: PageSource> PageSource for &S {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        unsafe { (**self).alloc_pages(size, align) }
    }
    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        unsafe { (**self).dealloc_pages(ptr, size, align) }
    }
    fn stats(&self) -> AllocStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_source_alignment_honored() {
        let s = SystemSource::new();
        for &align in &[PAGE_SIZE, 16 * 1024, 1 << 20] {
            unsafe {
                let p = s.alloc_pages(align, align);
                assert!(!p.is_null());
                assert!(is_aligned(p as usize, align), "{p:p} not aligned to {align:#x}");
                // Memory is usable.
                core::ptr::write_bytes(p, 0xAB, align);
                s.dealloc_pages(p, align, align);
            }
        }
    }

    #[test]
    fn counting_source_tracks_peak() {
        let s = CountingSource::new(SystemSource::new());
        unsafe {
            let a = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            let b = s.alloc_pages(2 * PAGE_SIZE, PAGE_SIZE);
            s.dealloc_pages(a, PAGE_SIZE, PAGE_SIZE);
            let st = s.stats();
            assert_eq!(st.live_bytes, 2 * PAGE_SIZE);
            assert_eq!(st.peak_bytes, 3 * PAGE_SIZE);
            assert_eq!(st.os_allocs, 2);
            assert_eq!(st.os_frees, 1);
            s.dealloc_pages(b, 2 * PAGE_SIZE, PAGE_SIZE);
        }
        assert_eq!(s.stats().live_bytes, 0);
        s.reset_stats();
        assert_eq!(s.stats(), AllocStats::default());
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), PAGE_SIZE);
        assert_eq!(pages_for(4097), 2 * PAGE_SIZE);
        assert_eq!(pages_for(3 * PAGE_SIZE), 3 * PAGE_SIZE);
    }

    #[test]
    fn reference_source_forwards() {
        let s = CountingSource::new(SystemSource::new());
        let r = &s;
        unsafe {
            let p = r.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(!p.is_null());
            r.dealloc_pages(p, PAGE_SIZE, PAGE_SIZE);
        }
        assert_eq!(r.stats().os_allocs, 1);
    }
}

/// A [`PageSource`] decorator that injects allocation failures: after
/// `budget` successful allocations, every further `alloc_pages` fails
/// until [`refill`](FlakySource::refill). Used by fault-injection tests
/// to drive allocators through their out-of-memory paths.
#[derive(Debug)]
pub struct FlakySource<S> {
    inner: S,
    remaining: core::sync::atomic::AtomicIsize,
}

impl<S> FlakySource<S> {
    /// Wraps `inner`, allowing `budget` successful allocations.
    pub const fn new(inner: S, budget: isize) -> Self {
        FlakySource { inner, remaining: core::sync::atomic::AtomicIsize::new(budget) }
    }

    /// Grants `n` more successful allocations (may "revive" a source
    /// that has been failing).
    pub fn refill(&self, n: isize) {
        self.remaining.store(n, core::sync::atomic::Ordering::Release);
    }

    /// Remaining successful allocations (may be negative after
    /// failures).
    pub fn remaining(&self) -> isize {
        self.remaining.load(core::sync::atomic::Ordering::Acquire)
    }
}

unsafe impl<S: PageSource> PageSource for FlakySource<S> {
    unsafe fn alloc_pages(&self, size: usize, align: usize) -> *mut u8 {
        use core::sync::atomic::Ordering;
        if self.remaining.fetch_sub(1, Ordering::AcqRel) <= 0 {
            return core::ptr::null_mut();
        }
        unsafe { self.inner.alloc_pages(size, align) }
    }

    unsafe fn dealloc_pages(&self, ptr: *mut u8, size: usize, align: usize) {
        unsafe { self.inner.dealloc_pages(ptr, size, align) }
    }

    fn stats(&self) -> AllocStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod flaky_tests {
    use super::*;

    #[test]
    fn flaky_source_fails_after_budget() {
        let s = FlakySource::new(SystemSource::new(), 2);
        unsafe {
            let a = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            let b = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(!a.is_null() && !b.is_null());
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null(), "budget exhausted");
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null(), "stays failed");
            s.refill(1);
            let c = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(!c.is_null(), "refill revives the source");
            s.dealloc_pages(a, PAGE_SIZE, PAGE_SIZE);
            s.dealloc_pages(b, PAGE_SIZE, PAGE_SIZE);
            s.dealloc_pages(c, PAGE_SIZE, PAGE_SIZE);
        }
    }

    #[test]
    fn dealloc_always_works() {
        let s = FlakySource::new(SystemSource::new(), 1);
        unsafe {
            let a = s.alloc_pages(PAGE_SIZE, PAGE_SIZE);
            assert!(s.alloc_pages(PAGE_SIZE, PAGE_SIZE).is_null());
            // Frees must never be blocked by the failure mode.
            s.dealloc_pages(a, PAGE_SIZE, PAGE_SIZE);
        }
    }
}
