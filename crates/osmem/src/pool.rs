//! Hyperblock-batched pool of fixed-size regions (§3.2.5).
//!
//! "In order to reduce the frequency of calls to mmap and munmap, we
//! allocate superblocks (e.g., 16 KB) in batches of (e.g., 1 MB)
//! hyperblocks (superblocks of superblocks)."
//!
//! [`PagePool`] keeps a lock-free LIFO of free regions. When empty it
//! obtains one hyperblock from the [`PageSource`], hands out the first
//! region, and pushes the rest. Freed regions return to the LIFO — the
//! pool **never unmaps on the hot path**, which is what makes the
//! tag-protected stack traversal safe (see [`TaggedStack`]); the paper
//! makes the equivalent trade for descriptor superblocks and notes the
//! retained fraction is negligible. Memory does go back to the OS, but
//! only through the quiescent maintenance entry points: `trim`/`trim_to`
//! unmap fully free hyperblocks down to a watermark, and `release_all`
//! exists for orderly teardown by the owner.

use crate::source::PageSource;
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use lockfree_structs::TaggedStack;
use std::alloc::{GlobalAlloc, Layout, System};

/// Registry entry recording one hyperblock for teardown. Allocated from
/// the system allocator (never the global allocator).
struct HyperRecord {
    base: *mut u8,
    bytes: usize,
    next: *mut HyperRecord,
}

/// A lock-free cache of `2^SHIFT`-byte, `2^SHIFT`-aligned regions carved
/// from hyperblocks of `batch` regions each.
///
/// # Example
///
/// ```
/// use osmem::{PagePool, SystemSource};
///
/// // 16 KiB superblocks in 1 MiB hyperblocks, as in the paper.
/// let src = SystemSource::new();
/// let pool: PagePool<14> = PagePool::new(64);
/// let sb = pool.alloc(&src);
/// assert!(!sb.is_null());
/// assert_eq!(sb as usize % (1 << 14), 0);
/// unsafe { pool.dealloc(sb) };
/// let again = pool.alloc(&src);
/// assert_eq!(again, sb, "freed region is recycled, not re-mapped");
/// unsafe { pool.dealloc(again) };
/// unsafe { pool.release_all(&src) };
/// ```
#[derive(Debug)]
pub struct PagePool<const SHIFT: u32> {
    free: TaggedStack<SHIFT>,
    hypers: AtomicPtr<HyperRecord>,
    hyper_count: AtomicUsize,
    batch: usize,
    /// Lifetime count of hyperblock carves (never decremented by trim).
    #[cfg(feature = "stats")]
    carves: malloc_api::telemetry::Counter,
}

unsafe impl<const SHIFT: u32> Send for PagePool<SHIFT> {}
unsafe impl<const SHIFT: u32> Sync for PagePool<SHIFT> {}

impl<const SHIFT: u32> PagePool<SHIFT> {
    /// Bytes per region.
    pub const REGION_SIZE: usize = 1 << SHIFT;

    /// Creates a pool that refills `batch` regions at a time.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub const fn new(batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        PagePool {
            free: TaggedStack::new(),
            hypers: AtomicPtr::new(core::ptr::null_mut()),
            hyper_count: AtomicUsize::new(0),
            batch,
            #[cfg(feature = "stats")]
            carves: malloc_api::telemetry::Counter::new(),
        }
    }

    /// Hands out one region: from the free LIFO if possible, otherwise
    /// from a freshly mapped hyperblock. Null only if the source fails.
    pub fn alloc<S: PageSource>(&self, source: &S) -> *mut u8 {
        let fp = malloc_api::fail_point!("pool.carve");
        if fp.kill {
            return core::ptr::null_mut(); // the caller sees OOM
        }
        if !fp.retry {
            // `retry` skips the free-LIFO fast path once, forcing a
            // fresh hyperblock carve even when regions are available.
            if let Some(r) = unsafe { self.free.pop() } {
                return r as *mut u8;
            }
        }
        let bytes = self.batch << SHIFT;
        let base = unsafe { source.alloc_pages(bytes, Self::REGION_SIZE) };
        if base.is_null() {
            // One more attempt on the LIFO: a racing free may have
            // repopulated it while the OS call failed.
            return unsafe { self.free.pop() }.map_or(core::ptr::null_mut(), |r| r as *mut u8);
        }
        if !self.register_hyperblock(base, bytes) {
            // No registry record means no teardown/trim path for this
            // hyperblock; return it rather than leak it, and report OOM
            // (the registry record comes from the system allocator, so
            // failing here means memory is truly exhausted).
            unsafe { source.dealloc_pages(base, bytes, Self::REGION_SIZE) };
            return unsafe { self.free.pop() }.map_or(core::ptr::null_mut(), |r| r as *mut u8);
        }
        // Keep region 0, push the rest.
        for i in 1..self.batch {
            unsafe { self.free.push(base as usize + (i << SHIFT)) };
        }
        #[cfg(feature = "stats")]
        self.carves.inc();
        base
    }

    /// Lifetime number of hyperblock carves performed by this pool
    /// (monotone; `trim` does not decrement it).
    #[cfg(feature = "stats")]
    pub fn carve_count(&self) -> u64 {
        self.carves.get()
    }

    /// Returns a region to the pool (never to the OS).
    ///
    /// # Safety
    ///
    /// `region` must have been returned by [`alloc`](Self::alloc) on this
    /// pool and be fully unused by the caller from this point.
    pub unsafe fn dealloc(&self, region: *mut u8) {
        unsafe { self.free.push(region as usize) };
    }

    /// Number of hyperblocks mapped so far.
    pub fn hyperblock_count(&self) -> usize {
        self.hyper_count.load(Ordering::Relaxed)
    }

    /// Total bytes currently held from the source.
    pub fn mapped_bytes(&self) -> usize {
        self.hyperblock_count() * (self.batch << SHIFT)
    }

    /// Whether `addr` lies inside any hyperblock this pool has mapped —
    /// the provenance question hardened frees ask before dereferencing a
    /// block prefix. Lock-free and allocation-free: walks the registry
    /// list, which is only mutated under the pool's quiescence contracts
    /// (`trim`/`release_all`), so a concurrent walk sees a valid chain.
    pub fn owns(&self, addr: usize) -> bool {
        self.owning_region(addr).is_some()
    }

    /// Like [`owns`](Self::owns), but returns the owning hyperblock's
    /// `(base, bytes)` extent so callers can compute in-region offsets
    /// (hardened frees validate descriptor-pointer stride this way).
    /// Same lock-free, allocation-free registry walk.
    pub fn owning_region(&self, addr: usize) -> Option<(usize, usize)> {
        let mut p = self.hypers.load(Ordering::Acquire);
        while !p.is_null() {
            let rec = unsafe { &*p };
            let base = rec.base as usize;
            if addr >= base && addr < base + rec.bytes {
                return Some((base, rec.bytes));
            }
            p = rec.next;
        }
        None
    }

    /// Calls `f` with each hyperblock's `(base, bytes)` extent without
    /// allocating — the crash-forensics variant of
    /// [`hyperblocks`](Self::hyperblocks), usable from a signal handler
    /// (the registry walk is the same lock-free chain as
    /// [`owning_region`](Self::owning_region)).
    pub fn for_each_region(&self, mut f: impl FnMut(usize, usize)) {
        let mut p = self.hypers.load(Ordering::Acquire);
        while !p.is_null() {
            let rec = unsafe { &*p };
            f(rec.base as usize, rec.bytes);
            p = rec.next;
        }
    }

    /// Snapshot of the hyperblock registry as `(base, bytes)` pairs.
    /// The registry is append-only until [`release_all`](Self::release_all),
    /// so a concurrent call sees a valid prefix of registrations.
    pub fn hyperblocks(&self) -> Vec<(*mut u8, usize)> {
        let mut out = Vec::new();
        let mut p = self.hypers.load(Ordering::Acquire);
        while !p.is_null() {
            let rec = unsafe { &*p };
            out.push((rec.base, rec.bytes));
            p = rec.next;
        }
        out
    }

    /// Returns every hyperblock to `source` and frees the registry.
    ///
    /// # Safety
    ///
    /// Requires exclusive quiescence: no region handed out by this pool
    /// may still be in use, and no other thread may touch the pool again.
    /// `source` must be the same source passed to every `alloc`.
    pub unsafe fn release_all<S: PageSource>(&self, source: &S) {
        // Drain the free list first: its intrusive links live inside the
        // hyperblocks about to be unmapped.
        while unsafe { self.free.pop() }.is_some() {}
        let mut p = self.hypers.swap(core::ptr::null_mut(), Ordering::AcqRel);
        while !p.is_null() {
            let rec = unsafe { &*p };
            let next = rec.next;
            unsafe { source.dealloc_pages(rec.base, rec.bytes, Self::REGION_SIZE) };
            unsafe { System.dealloc(p as *mut u8, Layout::new::<HyperRecord>()) };
            p = next;
        }
        self.hyper_count.store(0, Ordering::Relaxed);
    }

    /// Unmaps every *fully free* hyperblock (all `batch` regions on the
    /// free LIFO) and returns the number of bytes released to `source`.
    ///
    /// # Safety
    ///
    /// Requires quiescence: no concurrent `alloc`/`dealloc` on this pool
    /// while trimming (the free-LIFO links live inside the hyperblocks
    /// being unmapped, and the tag-protected traversal safety argument
    /// rests on regions never disappearing mid-pop). `source` must be
    /// the same source passed to every `alloc`.
    pub unsafe fn trim<S: PageSource>(&self, source: &S) -> usize {
        unsafe { self.trim_to(source, 0) }
    }

    /// Like [`trim`](Self::trim), but stops once the pool's mapped bytes
    /// drop to `target_bytes` (a low watermark). Only fully free
    /// hyperblocks are candidates; partially used ones are never touched.
    ///
    /// # Safety
    ///
    /// Same quiescence contract as [`trim`](Self::trim).
    pub unsafe fn trim_to<S: PageSource>(&self, source: &S, target_bytes: usize) -> usize {
        // Drain the free LIFO into a local set so we can count per-
        // hyperblock free regions without racing our own traversal.
        let mut free: Vec<usize> = Vec::new();
        while let Some(r) = unsafe { self.free.pop() } {
            free.push(r);
        }
        // Detach the registry; we rebuild it below with survivors only.
        let mut p = self.hypers.swap(core::ptr::null_mut(), Ordering::AcqRel);
        let mut released = 0usize;
        let mut survivors: *mut HyperRecord = core::ptr::null_mut();
        while !p.is_null() {
            let rec = unsafe { &mut *p };
            let next = rec.next;
            let (base, bytes) = (rec.base as usize, rec.bytes);
            let free_here = free.iter().filter(|&&r| r >= base && r < base + bytes).count();
            let fully_free = free_here << SHIFT == bytes;
            if fully_free && self.mapped_bytes() > target_bytes {
                free.retain(|&r| r < base || r >= base + bytes);
                unsafe { source.dealloc_pages(base as *mut u8, bytes, Self::REGION_SIZE) };
                unsafe { System.dealloc(p as *mut u8, Layout::new::<HyperRecord>()) };
                self.hyper_count.fetch_sub(1, Ordering::Relaxed);
                released += bytes;
            } else {
                rec.next = survivors;
                survivors = p;
            }
            p = next;
        }
        self.hypers.store(survivors, Ordering::Release);
        // Re-seed the LIFO with the surviving free regions.
        for r in free {
            unsafe { self.free.push(r) };
        }
        released
    }

    /// Registers a freshly mapped hyperblock; `false` means the registry
    /// record itself could not be allocated (the hyperblock is *not*
    /// registered and the caller must hand it back to the source).
    fn register_hyperblock(&self, base: *mut u8, bytes: usize) -> bool {
        let rec = unsafe { System.alloc(Layout::new::<HyperRecord>()) } as *mut HyperRecord;
        if rec.is_null() {
            return false;
        }
        let mut head = self.hypers.load(Ordering::Acquire);
        loop {
            unsafe { rec.write(HyperRecord { base, bytes, next: head }) };
            match self.hypers.compare_exchange_weak(head, rec, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(observed) => head = observed,
            }
        }
        self.hyper_count.fetch_add(1, Ordering::Relaxed);
        true
    }
}

impl<const SHIFT: u32> Drop for PagePool<SHIFT> {
    fn drop(&mut self) {
        // Without the source we cannot unmap; free only the registry
        // records. Owners that care call `release_all` first.
        let mut p = *self.hypers.get_mut();
        while !p.is_null() {
            let next = unsafe { (*p).next };
            unsafe { System.dealloc(p as *mut u8, Layout::new::<HyperRecord>()) };
            p = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CountingSource, SystemSource};
    use std::sync::Arc;

    type SbPool = PagePool<14>; // 16 KiB regions

    #[test]
    fn regions_are_aligned_and_distinct() {
        let src = SystemSource::new();
        let pool = SbPool::new(8);
        let mut regions = Vec::new();
        for _ in 0..20 {
            let r = pool.alloc(&src);
            assert!(!r.is_null());
            assert_eq!(r as usize % SbPool::REGION_SIZE, 0);
            assert!(!regions.contains(&r));
            regions.push(r);
        }
        // 20 regions at batch 8 → 3 hyperblocks.
        assert_eq!(pool.hyperblock_count(), 3);
        for r in regions {
            unsafe { pool.dealloc(r) };
        }
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn recycling_avoids_new_hyperblocks() {
        let src = CountingSource::new(SystemSource::new());
        let pool = SbPool::new(4);
        for _ in 0..100 {
            let r = pool.alloc(&src);
            assert!(!r.is_null());
            unsafe { pool.dealloc(r) };
        }
        assert_eq!(pool.hyperblock_count(), 1, "churn must not map new hyperblocks");
        assert_eq!(src.stats().os_allocs, 1);
        unsafe { pool.release_all(&src) };
        assert_eq!(src.stats().live_bytes, 0);
    }

    #[test]
    fn batching_reduces_os_calls() {
        // The point of §3.2.5: N region allocations cost N/batch OS calls.
        let src = CountingSource::new(SystemSource::new());
        let pool = SbPool::new(64);
        let regions: Vec<*mut u8> = (0..64).map(|_| pool.alloc(&src)).collect();
        assert_eq!(src.stats().os_allocs, 1);
        for r in regions {
            unsafe { pool.dealloc(r) };
        }
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn regions_are_writable_across_whole_extent() {
        let src = SystemSource::new();
        let pool = SbPool::new(2);
        let r = pool.alloc(&src);
        unsafe {
            core::ptr::write_bytes(r, 0x5A, SbPool::REGION_SIZE);
            assert_eq!(*r, 0x5A);
            assert_eq!(*r.add(SbPool::REGION_SIZE - 1), 0x5A);
            pool.dealloc(r);
            pool.release_all(&src);
        }
    }

    #[test]
    fn owns_tracks_hyperblock_extents() {
        let src = CountingSource::new(SystemSource::new());
        let pool = SbPool::new(4);
        assert!(!pool.owns(0x1000), "empty pool owns nothing");
        let r = pool.alloc(&src);
        assert!(!r.is_null());
        let addr = r as usize;
        assert!(pool.owns(addr));
        assert!(pool.owns(addr + SbPool::REGION_SIZE), "sibling region of the same hyperblock");
        assert!(!pool.owns(addr.wrapping_sub(1)));
        let stack_local = 0u8;
        assert!(!pool.owns(&stack_local as *const u8 as usize), "foreign memory is not owned");
        unsafe {
            pool.dealloc(r);
            pool.trim(&src);
        }
        assert!(!pool.owns(addr), "trimmed hyperblocks are forgotten");
        unsafe { pool.release_all(&src) };
    }

    #[test]
    fn trim_unmaps_only_fully_free_hyperblocks() {
        let src = CountingSource::new(SystemSource::new());
        let pool = SbPool::new(4);
        // Two hyperblocks: keep one region of the first live, free the rest.
        let regions: Vec<*mut u8> = (0..8).map(|_| pool.alloc(&src)).collect();
        assert_eq!(pool.hyperblock_count(), 2);
        for &r in &regions[1..] {
            unsafe { pool.dealloc(r) };
        }
        let released = unsafe { pool.trim(&src) };
        assert_eq!(released, 4 * SbPool::REGION_SIZE, "exactly one hyperblock released");
        assert_eq!(pool.hyperblock_count(), 1);
        assert_eq!(src.stats().live_bytes, 4 * SbPool::REGION_SIZE);
        // The surviving hyperblock's free regions are still usable.
        let again = pool.alloc(&src);
        assert!(!again.is_null());
        assert_eq!(src.stats().os_allocs, 2, "trim must not force a remap");
        unsafe {
            pool.dealloc(again);
            pool.dealloc(regions[0]);
            pool.release_all(&src);
        }
        assert_eq!(src.stats().live_bytes, 0);
    }

    #[test]
    fn trim_to_respects_watermark() {
        let src = CountingSource::new(SystemSource::new());
        let pool = SbPool::new(2);
        let regions: Vec<*mut u8> = (0..6).map(|_| pool.alloc(&src)).collect();
        assert_eq!(pool.hyperblock_count(), 3);
        for r in regions {
            unsafe { pool.dealloc(r) };
        }
        // Watermark of one hyperblock: trim stops there even though all
        // three are fully free.
        let hyper_bytes = 2 * SbPool::REGION_SIZE;
        let released = unsafe { pool.trim_to(&src, hyper_bytes) };
        assert_eq!(released, 2 * hyper_bytes);
        assert_eq!(pool.hyperblock_count(), 1);
        // A full trim takes the rest.
        assert_eq!(unsafe { pool.trim(&src) }, hyper_bytes);
        assert_eq!(pool.hyperblock_count(), 0);
        assert_eq!(src.stats().live_bytes, 0);
        // The pool remains usable after trimming to zero.
        let r = pool.alloc(&src);
        assert!(!r.is_null());
        unsafe {
            pool.dealloc(r);
            pool.release_all(&src);
        }
        assert_eq!(src.stats().live_bytes, 0);
    }

    #[test]
    fn trim_on_empty_pool_is_noop() {
        let src = CountingSource::new(SystemSource::new());
        let pool = SbPool::new(4);
        assert_eq!(unsafe { pool.trim(&src) }, 0);
        assert_eq!(pool.hyperblock_count(), 0);
    }

    #[test]
    fn concurrent_alloc_dealloc_no_duplicates() {
        let src = Arc::new(SystemSource::new());
        let pool = Arc::new(SbPool::new(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let src = Arc::clone(&src);
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let r = pool.alloc(&*src);
                    assert!(!r.is_null());
                    // Exclusive-ownership canary in the second word (the
                    // first is the free-list link).
                    unsafe {
                        malloc_api::testkit::canary_claim_release(
                            r as usize + 8,
                            "region double-allocated",
                        );
                        pool.dealloc(r);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let pool = Arc::try_unwrap(pool).unwrap();
        unsafe { pool.release_all(&*src) };
    }
}
