//! OS page-memory substrate for the lfmalloc reproduction.
//!
//! The PLDI 2004 allocator sits on two OS services: getting page-aligned
//! memory runs (the paper uses `mmap`) and returning them (`munmap`).
//! This crate abstracts those behind [`PageSource`] and adds the two
//! pieces the paper's evaluation needs:
//!
//! * [`CountingSource`] — wraps any source with live/peak accounting so
//!   the §4.2.5 space-efficiency experiment can compare maximum space
//!   used per allocator.
//! * [`PagePool`] — a lock-free cache of fixed-size regions carved from
//!   large "hyperblocks", implementing §3.2.5's "we allocate superblocks
//!   (e.g., 16 KB) in batches of (e.g., 1 MB) hyperblocks (superblocks
//!   of superblocks)" to reduce the frequency of `mmap`/`munmap` calls.
//!
//! # Substitution note (see DESIGN.md)
//!
//! The paper's platform is AIX 5.1 `mmap` on PowerPC. Here the default
//! [`SystemSource`] obtains aligned runs from `std::alloc::System` —
//! deliberately *not* the Rust global allocator, so the allocators built
//! on top can themselves be installed as the global allocator without
//! recursion. The algorithmic content above this layer is unchanged.

pub mod pool;
pub mod registry;
pub mod source;

pub use pool::PagePool;
pub use registry::SpanRegistry;
pub use source::{CountingSource, FlakySource, PageSource, SystemSource, PAGE_SIZE};
