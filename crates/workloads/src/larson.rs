//! Larson (Larson & Krishnan, ISMM 1998): the server-workload
//! simulation.
//!
//! "Initially one thread allocates and frees random sized blocks (16 to
//! 80 bytes) in random order, then an equal number of blocks (1024) is
//! handed over to each of the remaining threads. In the parallel phase
//! ... each thread randomly selects a block and frees it, then allocates
//! a new random-sized block in its place." Captures "the robustness of
//! malloc's latency and scalability under irregular allocation patterns
//! with respect to block-size and order of deallocation over a long
//! period of time."
//!
//! The paper measures pairs completed in 30 seconds; we invert the knob
//! (fixed pair count, measured time) so runs are deterministic — the
//! throughput number is the same quantity.

use crate::common::{run_parallel, WorkloadResult};
use malloc_api::testkit::TestRng;
use malloc_api::RawMalloc;
use std::sync::Arc;

/// Paper's smallest block size ("16 to 80 bytes").
pub const MIN_SIZE: usize = 16;
/// One past the paper's largest block size.
pub const MAX_SIZE: usize = 81;

/// Paper's slots per thread.
pub const SLOTS: usize = 1024;

/// Runs Larson: setup churn on the main thread, hand-over of `slots`
/// live blocks per worker, then `pairs_per_thread` free+malloc
/// replacements per worker. `ops` counts replacement pairs.
pub fn run<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    slots: usize,
    pairs_per_thread: u64,
    seed: u64,
) -> WorkloadResult {
    // --- Setup phase (untimed): one thread churns, then populates every
    // worker's slot array. The hand-over means workers begin by freeing
    // blocks another thread allocated — the remote-free pattern the
    // paper calls out in Hoard's behaviour.
    let mut rng = TestRng::new(seed);
    unsafe {
        let mut warmup: Vec<*mut u8> = (0..slots)
            .map(|_| alloc.malloc(rng.range(MIN_SIZE, MAX_SIZE)))
            .collect();
        // Free in random order.
        for i in (1..warmup.len()).rev() {
            let j = rng.range(0, i + 1);
            warmup.swap(i, j);
        }
        for p in warmup {
            alloc.free(p);
        }
    }
    let handoff: Vec<Vec<usize>> = (0..threads)
        .map(|_| {
            (0..slots)
                .map(|_| {
                    let p = unsafe { alloc.malloc(rng.range(MIN_SIZE, MAX_SIZE)) };
                    assert!(!p.is_null());
                    p as usize
                })
                .collect()
        })
        .collect();
    let handoff = Arc::new(std::sync::Mutex::new(handoff));

    // --- Parallel phase (timed).
    let alloc2 = Arc::clone(&alloc);
    let result = run_parallel(threads, move |t| {
        let mut slots_vec: Vec<usize> = {
            let mut h = handoff.lock().unwrap();
            core::mem::take(&mut h[t])
        };
        let mut rng = TestRng::new(seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9));
        for _ in 0..pairs_per_thread {
            let i = rng.range(0, slots_vec.len());
            unsafe {
                alloc2.free(slots_vec[i] as *mut u8);
                let sz = rng.range(MIN_SIZE, MAX_SIZE);
                let p = alloc2.malloc(sz);
                debug_assert!(!p.is_null());
                core::ptr::write_volatile(p, sz as u8);
                slots_vec[i] = p as usize;
            }
        }
        // Cleanup (still inside the worker, but cheap relative to the
        // pair loop).
        for p in slots_vec {
            unsafe { alloc2.free(p as *mut u8) };
        }
        pairs_per_thread
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlheap::LockedHeap;
    use lfmalloc::LfMalloc;

    #[test]
    fn runs_on_lfmalloc() {
        let r = run(Arc::new(LfMalloc::new_default()), 3, 128, 2_000, 42);
        assert_eq!(r.ops, 6_000);
    }

    #[test]
    fn runs_on_locked_heap() {
        let r = run(Arc::new(LockedHeap::new()), 2, 64, 1_000, 7);
        assert_eq!(r.ops, 2_000);
    }

    #[test]
    fn no_leaks_across_run(){
        // All slots freed at the end: live OS bytes return to the pool
        // level, and a second run must not grow hyperblocks much.
        let a = Arc::new(LfMalloc::new_default());
        run(Arc::clone(&a), 2, 256, 2_000, 1);
        let after_first = a.hyperblock_count();
        run(Arc::clone(&a), 2, 256, 2_000, 2);
        assert!(a.hyperblock_count() <= after_first + 1, "second run mapped new memory");
    }
}
