//! The six multithreaded allocator benchmarks of Michael (PLDI 2004)
//! §4.1, implemented once and generic over [`malloc_api::RawMalloc`] so
//! every allocator in the workspace runs the identical workload.
//!
//! | module | paper benchmark | captures |
//! |---|---|---|
//! | [`linux_scalability`] | Linux scalability \[Lever & Boreham\] | latency + scalability, regular private allocation |
//! | [`threadtest`] | Threadtest \[Hoard\] | latency + scalability, batched allocation |
//! | [`false_sharing`] | Active-false / Passive-false \[Hoard\] | allocator-induced false sharing |
//! | [`larson`] | Larson \[Larson & Krishnan\] | robustness under irregular sizes/order, long-running |
//! | [`producer_consumer`] | lock-free producer-consumer (new in the paper) | remote frees, one hot heap |
//!
//! [`record`] wraps larson/threadtest/producer_consumer in the
//! shadow-heap oracle's recording mode, yielding a replayable trace of
//! the run alongside the benchmark result.
//!
//! Op counts are parameters: the paper's sizes (10M pairs/thread, 30 s
//! phases) target a 2004 16-way SMP; the `bench` crate picks defaults
//! that finish in seconds and the binaries accept `--ops` to run at
//! paper scale.

pub mod common;
pub mod false_sharing;
pub mod larson;
pub mod linux_scalability;
pub mod producer_consumer;
pub mod record;
pub mod threadtest;

pub use common::WorkloadResult;
