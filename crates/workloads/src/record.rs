//! Trace-recording mode: run a paper workload through the shadow-heap
//! oracle and get back both the benchmark result and a portable
//! [`Trace`] of every heap op it performed.
//!
//! The wrapper records (it does not fill-check — the workloads write
//! into their blocks) and still enforces the structural oracle checks:
//! uniqueness of handed-out pointers, tracked frees, alignment, and
//! calloc zeroing. A violation halts the run and surfaces in
//! `oracle.violation_count()`; these helpers assert none occurred, so a
//! recorded trace is always a *clean* history suitable for replay
//! against any other allocator.
//!
//! Recording serializes ops through the recorder's lock, so the trace
//! documents one valid interleaving rather than the exact parallel
//! timing — which is precisely what the deterministic replayer needs.

use crate::common::WorkloadResult;
use crate::{larson, producer_consumer, threadtest};
use malloc_api::RawMalloc;
use oracle::{OracleMalloc, Trace};
use std::sync::Arc;

/// Shadow-map capacity for recorded runs; covers the live-block
/// high-water mark of the default benchmark parameters with slack.
const RECORD_CAPACITY: usize = 1 << 17;

fn finish<A: RawMalloc>(oracle: &OracleMalloc<A>, seed: u64) -> Trace {
    assert_eq!(
        oracle.violation_count(),
        0,
        "workload run violated the heap contract: {:?}",
        oracle.violations()
    );
    oracle.take_trace(seed)
}

/// [`larson::run`] under the recording oracle.
pub fn larson_recorded<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    slots: usize,
    pairs_per_thread: u64,
    seed: u64,
) -> (WorkloadResult, Trace) {
    let oracle = Arc::new(OracleMalloc::recording(alloc, RECORD_CAPACITY));
    let r = larson::run(Arc::clone(&oracle), threads, slots, pairs_per_thread, seed);
    let t = finish(&*oracle, seed);
    (r, t)
}

/// [`threadtest::run`] under the recording oracle.
pub fn threadtest_recorded<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    iterations: u64,
    batch: usize,
) -> (WorkloadResult, Trace) {
    let oracle = Arc::new(OracleMalloc::recording(alloc, RECORD_CAPACITY));
    let r = threadtest::run(Arc::clone(&oracle), threads, iterations, batch);
    let t = finish(&*oracle, 0);
    (r, t)
}

/// [`producer_consumer::run`] under the recording oracle — the
/// remote-free-heavy history, the most valuable one to replay against
/// every allocator.
pub fn producer_consumer_recorded<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    params: producer_consumer::Params,
) -> (WorkloadResult, Trace) {
    let seed = params.seed;
    let oracle = Arc::new(OracleMalloc::recording(alloc, RECORD_CAPACITY));
    let r = producer_consumer::run(Arc::clone(&oracle), threads, params);
    let t = finish(&*oracle, seed);
    (r, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfmalloc::LfMalloc;
    use oracle::TraceOp;

    #[test]
    fn threadtest_records_a_replayable_trace() {
        let (r, trace) =
            threadtest_recorded(Arc::new(LfMalloc::new_default()), 2, 3, 200);
        assert_eq!(r.ops, 2 * 3 * 200);
        assert_eq!(trace.ops.len() as u64, 2 * (2 * 3 * 200), "one malloc + one free per pair");
        // The recorded history replays clean on a fresh allocator.
        let out = oracle::replay(&LfMalloc::new_default(), &trace);
        assert!(out.is_clean(), "{:?}", out.violations);
    }

    #[test]
    fn larson_records_remote_frees() {
        let (_, trace) = larson_recorded(Arc::new(LfMalloc::new_default()), 2, 64, 200, 42);
        // The handoff means some frees happen on a different thread
        // than the matching malloc.
        let mut owner = std::collections::HashMap::new();
        let mut remote = 0usize;
        for ev in &trace.ops {
            match ev.op {
                TraceOp::Malloc { slot, .. }
                | TraceOp::Calloc { slot, .. }
                | TraceOp::Aligned { slot, .. } => {
                    owner.insert(slot, ev.thread);
                }
                TraceOp::Free { slot } => {
                    if owner.get(&slot).is_some_and(|t| *t != ev.thread) {
                        remote += 1;
                    }
                }
                TraceOp::Realloc { .. } => {}
            }
        }
        assert!(remote > 0, "larson handoff must produce remote frees");
        let out = oracle::replay(&LfMalloc::new_default(), &trace);
        assert!(out.is_clean(), "{:?}", out.violations);
    }

    #[test]
    fn producer_consumer_records_clean() {
        let params = producer_consumer::Params {
            database_size: 5_000,
            tasks: 300,
            work: 50,
            seed: 11,
        };
        let (_, trace) =
            producer_consumer_recorded(Arc::new(LfMalloc::new_default()), 2, params);
        assert!(!trace.ops.is_empty());
        let out = oracle::replay(&LfMalloc::new_default(), &trace);
        assert!(out.is_clean(), "{:?}", out.violations);
    }
}
