//! Linux scalability (benchmark 1 of Lever & Boreham, FREENIX 2000).
//!
//! "Each thread performs 10 million malloc/free pairs of 8 byte blocks
//! in a tight loop." Captures allocator latency and scalability under
//! the most regular private allocation pattern; this is also the
//! workload behind the paper's headline latency numbers (282 ns per
//! pair on POWER4) and the 331× gap to libc malloc at 16 processors.

use crate::common::{run_parallel, WorkloadResult};
use malloc_api::RawMalloc;
use std::sync::Arc;

/// The paper's block size.
pub const BLOCK_SIZE: usize = 8;

/// Runs the benchmark: `threads` × `pairs_per_thread` malloc/free pairs
/// of 8-byte blocks. Returns pairs as `ops`.
pub fn run<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    pairs_per_thread: u64,
) -> WorkloadResult {
    run_parallel(threads, move |_t| {
        for _ in 0..pairs_per_thread {
            unsafe {
                let p = alloc.malloc(BLOCK_SIZE);
                debug_assert!(!p.is_null());
                // Touch the block so the compiler cannot elide the pair.
                core::ptr::write_volatile(p, 1);
                alloc.free(p);
            }
        }
        pairs_per_thread
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlheap::LockedHeap;
    use lfmalloc::LfMalloc;

    #[test]
    fn runs_on_lfmalloc() {
        let r = run(Arc::new(LfMalloc::new_default()), 2, 10_000);
        assert_eq!(r.ops, 20_000);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn runs_on_locked_heap() {
        let r = run(Arc::new(LockedHeap::new()), 2, 5_000);
        assert_eq!(r.ops, 10_000);
    }

    #[test]
    fn single_thread_runs() {
        let r = run(Arc::new(LfMalloc::new_default()), 1, 1_000);
        assert_eq!(r.ops, 1_000);
    }
}
