//! Shared measurement scaffolding for the benchmarks.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Result of one workload run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadResult {
    /// Total operations performed (workload-defined unit: malloc/free
    /// pairs, or tasks).
    pub ops: u64,
    /// Wall-clock time of the parallel phase.
    pub elapsed: Duration,
}

impl WorkloadResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Speedup of this run over a baseline run (throughput ratio) — the
    /// paper's y-axis: "Speedup over contention-free libc malloc".
    pub fn speedup_over(&self, baseline: &WorkloadResult) -> f64 {
        self.throughput() / baseline.throughput().max(1e-12)
    }

    /// Mean nanoseconds per operation.
    pub fn ns_per_op(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.ops.max(1) as f64
    }
}

impl core::fmt::Display for WorkloadResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} ops in {:.3}s ({:.0} ops/s, {:.0} ns/op)",
            self.ops,
            self.elapsed.as_secs_f64(),
            self.throughput(),
            self.ns_per_op()
        )
    }
}

/// Spawns `threads` workers, starts them simultaneously behind a
/// barrier, times the parallel phase, and sums per-thread op counts.
///
/// The worker receives its thread index and returns its op count.
pub fn run_parallel<F>(threads: usize, worker: F) -> WorkloadResult
where
    F: Fn(usize) -> u64 + Send + Sync + 'static,
{
    assert!(threads >= 1);
    let worker = Arc::new(worker);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let worker = Arc::clone(&worker);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            worker(t)
        }));
    }
    // Timestamp BEFORE the main thread's barrier arrival: main is the
    // last arriver, so this marks the moment the workers are released.
    // (Timestamping after `wait()` returns loses the race on a single
    // CPU: the scheduler can run every worker to completion before main
    // wakes up, collapsing the measured phase to microseconds.)
    let start = Instant::now();
    barrier.wait();
    let mut ops = 0;
    for h in handles {
        ops += h.join().expect("worker panicked");
    }
    WorkloadResult { ops, elapsed: start.elapsed() }
}

/// The paper's footnote-4 measurement hygiene: spawn (and join) one
/// do-nothing thread before timing, so allocators that special-case the
/// never-spawned-a-thread process cannot bypass synchronization.
pub fn defeat_single_thread_bypass() {
    std::thread::spawn(|| {}).join().unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_sums_ops() {
        let r = run_parallel(4, |_t| 25);
        assert_eq!(r.ops, 100);
        assert!(r.elapsed > Duration::ZERO);
    }

    #[test]
    fn throughput_and_speedup() {
        let a = WorkloadResult { ops: 1000, elapsed: Duration::from_secs(1) };
        let b = WorkloadResult { ops: 500, elapsed: Duration::from_secs(1) };
        assert!((a.throughput() - 1000.0).abs() < 1e-6);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-6);
        assert!((a.ns_per_op() - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn worker_index_is_passed() {
        let r = run_parallel(3, |t| t as u64);
        assert_eq!(r.ops, 0 + 1 + 2);
    }

    #[test]
    fn display_is_informative() {
        let a = WorkloadResult { ops: 10, elapsed: Duration::from_millis(1) };
        let s = format!("{a}");
        assert!(s.contains("ops"));
    }
}
