//! Active-false and Passive-false (from the Hoard distribution).
//!
//! "In Active-false, each thread performs 10,000 malloc/free pairs (of 8
//! byte blocks) and each time it writes 1,000 times to each byte of the
//! allocated block. Passive-false is similar ... except that initially
//! one thread allocates blocks and hands them to the other threads,
//! which free them immediately and then proceed as in Active-false.
//! These two benchmarks capture the allocator's ability to avoid causing
//! false sharing, whether actively or passively."
//!
//! An allocator *actively* induces false sharing by handing blocks from
//! one cache line to different threads; it *passively* induces it when a
//! remote free lets a thread's next malloc return memory still hot in
//! another processor's cache line. The measured quantity is pure memory
//! write bandwidth — allocator latency "plays little role" (§4.2.2).

use crate::common::{run_parallel, WorkloadResult};
use malloc_api::RawMalloc;
use std::sync::mpsc;
use std::sync::Arc;

/// The paper's block size.
pub const BLOCK_SIZE: usize = 8;

fn hammer_block(p: *mut u8, writes_per_byte: u32) {
    for _ in 0..writes_per_byte {
        for i in 0..BLOCK_SIZE {
            unsafe { core::ptr::write_volatile(p.add(i), i as u8) };
        }
    }
}

/// Active-false: `threads` × `pairs_per_thread` iterations of
/// malloc → hammer the block → free. `ops` counts pairs.
pub fn run_active<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    pairs_per_thread: u64,
    writes_per_byte: u32,
) -> WorkloadResult {
    run_parallel(threads, move |_t| {
        for _ in 0..pairs_per_thread {
            unsafe {
                let p = alloc.malloc(BLOCK_SIZE);
                debug_assert!(!p.is_null());
                hammer_block(p, writes_per_byte);
                alloc.free(p);
            }
        }
        pairs_per_thread
    })
}

/// Passive-false: one distributor thread allocates `pairs_per_thread`
/// blocks for each worker; workers free those remote blocks immediately,
/// then proceed exactly as Active-false.
pub fn run_passive<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    pairs_per_thread: u64,
    writes_per_byte: u32,
) -> WorkloadResult {
    // Distribution phase (untimed, matching "initially").
    let mut channels = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = mpsc::channel::<usize>();
        for _ in 0..pairs_per_thread {
            let p = unsafe { alloc.malloc(BLOCK_SIZE) };
            assert!(!p.is_null());
            tx.send(p as usize).unwrap();
        }
        channels.push(std::sync::Mutex::new(Some(rx)));
    }
    let channels = Arc::new(channels);
    let alloc2 = Arc::clone(&alloc);
    run_parallel(threads, move |t| {
        let rx = channels[t].lock().unwrap().take().expect("one worker per channel");
        // Free the handed-over blocks immediately (the passive trigger),
        // then behave as Active-false.
        while let Ok(p) = rx.try_recv() {
            unsafe { alloc2.free(p as *mut u8) };
        }
        for _ in 0..pairs_per_thread {
            unsafe {
                let p = alloc2.malloc(BLOCK_SIZE);
                debug_assert!(!p.is_null());
                hammer_block(p, writes_per_byte);
                alloc2.free(p);
            }
        }
        pairs_per_thread
    })
}

/// Diagnostic used by tests and EXPERIMENTS.md: fraction of consecutive
/// same-thread allocations that landed on the same cache line as another
/// thread's live block would be the true false-sharing metric; as a
/// cheap proxy we report how many distinct cache lines a thread's blocks
/// touch (an allocator that packs different threads' blocks into one
/// line shows a low per-thread line count).
pub fn distinct_lines<A: RawMalloc>(alloc: &A, blocks: usize) -> usize {
    let mut lines = std::collections::HashSet::new();
    let mut ptrs = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        let p = unsafe { alloc.malloc(BLOCK_SIZE) };
        lines.insert(p as usize / 64);
        ptrs.push(p);
    }
    for p in ptrs {
        unsafe { alloc.free(p) };
    }
    lines.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlheap::LockedHeap;
    use lfmalloc::LfMalloc;

    #[test]
    fn active_runs() {
        let r = run_active(Arc::new(LfMalloc::new_default()), 2, 200, 10);
        assert_eq!(r.ops, 400);
    }

    #[test]
    fn passive_runs_and_frees_all_handed_blocks() {
        let a = Arc::new(LfMalloc::new_default());
        let r = run_passive(Arc::clone(&a), 3, 100, 5);
        assert_eq!(r.ops, 300);
        // All handed-over blocks were freed: churn again to make sure
        // the allocator is still coherent.
        let r2 = run_active(a, 2, 100, 1);
        assert_eq!(r2.ops, 200);
    }

    #[test]
    fn passive_runs_on_locked_heap() {
        let r = run_passive(Arc::new(LockedHeap::new()), 2, 50, 2);
        assert_eq!(r.ops, 100);
    }
}
