//! The paper's lock-free producer-consumer benchmark (§4.1).
//!
//! "Initially, a database of 1 million items is initialized randomly.
//! One thread is the producer and the others, if any, are consumers. For
//! each task, the producer selects a random-sized (10 to 20) random set
//! of array indexes, allocates a block of matching size (40 to 80 bytes)
//! to record the array indexes, then allocates a fixed size task
//! structure (32 bytes) and a fixed size queue node (16 bytes), and
//! enqueues the task in a lock-free FIFO queue. A consumer thread
//! repeatedly dequeues a task, creates histograms from the database for
//! the indexes in the task, and then spends time proportional to a
//! parameter work performing local work ... When the number of tasks in
//! the queue exceeds 1000, the producer helps the consumers ... Each
//! task involves 3 malloc operations on the part of the producer, and
//! one malloc and 4 free operations on the part of the consumer."
//!
//! This captures "malloc's robustness under the producer-consumer
//! sharing pattern, where threads free blocks allocated by other
//! threads" — the pattern that hammers Hoard's producer heap lock while
//! the lock-free allocator's frees touch only the block's own superblock
//! descriptor.

use crate::common::{run_parallel, WorkloadResult};
use lockfree_structs::Queue;
use malloc_api::testkit::TestRng;
use malloc_api::RawMalloc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Paper's smallest per-task index-set size ("random-sized (10 to 20)").
pub const MIN_INDEXES: usize = 10;
/// One past the paper's largest per-task index-set size.
pub const MAX_INDEXES: usize = 21;

/// Queue length at which the producer helps consume.
pub const HELP_THRESHOLD: usize = 1000;

/// Task structure size (paper: 32 bytes).
#[repr(C)]
struct Task {
    index_block: *mut u8,
    qnode: *mut u8,
    count: u32,
    _pad: u32,
}

const _: () = assert!(core::mem::size_of::<Task>() == 24); // allocated as 32

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Database entries (paper: 1 million).
    pub database_size: usize,
    /// Total tasks to produce.
    pub tasks: u64,
    /// Consumer local-work iterations per task (the paper's knee-shaping
    /// parameter: 500 / 750 / 1000 in Figure 8(f–h)).
    pub work: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params { database_size: 1 << 20, tasks: 10_000, work: 500, seed: 0xFACADE }
    }
}

struct Shared<A: RawMalloc> {
    alloc: Arc<A>,
    queue: Queue,
    queue_len: AtomicUsize,
    produced_done: AtomicBool,
    consumed: AtomicU64,
    database: Vec<u32>,
    params: Params,
    sink: AtomicU64,
}

impl<A: RawMalloc + Send + Sync> Shared<A> {
    /// Producer side of one task: 3 mallocs + enqueue.
    unsafe fn produce_one(&self, rng: &mut TestRng) {
        let n = rng.range(MIN_INDEXES, MAX_INDEXES);
        unsafe {
            // Index block: 4 bytes per index → 40..=80 bytes.
            let index_block = self.alloc.malloc(n * 4);
            debug_assert!(!index_block.is_null());
            for i in 0..n {
                let idx = rng.range(0, self.database.len()) as u32;
                (index_block as *mut u32).add(i).write(idx);
            }
            // Fixed-size task structure (32 bytes).
            let task = self.alloc.malloc(32) as *mut Task;
            debug_assert!(!task.is_null());
            // Fixed-size queue node (16 bytes): the paper's queue links
            // through this allocation; our queue manages its own links,
            // so this block replicates the malloc/free traffic verbatim
            // and travels with the task.
            let qnode = self.alloc.malloc(16);
            debug_assert!(!qnode.is_null());
            task.write(Task { index_block, qnode, count: n as u32, _pad: 0 });
            self.queue.push(task as usize);
            self.queue_len.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Consumer side: dequeue + histogram + local work + 1 malloc +
    /// 4 frees. Returns false if the queue was empty.
    unsafe fn consume_one(&self, _rng: &mut TestRng) -> bool {
        let Some(task_addr) = self.queue.pop() else { return false };
        self.queue_len.fetch_sub(1, Ordering::Relaxed);
        unsafe {
            let task = task_addr as *mut Task;
            let Task { index_block, qnode, count, .. } = task.read();
            // Histogram over the database rows named by the task.
            let mut hist = [0u64; 16];
            for i in 0..count as usize {
                let idx = (index_block as *const u32).add(i).read() as usize;
                let v = self.database[idx % self.database.len()];
                hist[(v % 16) as usize] += 1;
            }
            // Local work proportional to `work` (the consumer's one
            // malloc is its scratch block, as in Threadtest's loop).
            let scratch = self.alloc.malloc(8);
            debug_assert!(!scratch.is_null());
            let mut acc = 0u64;
            for w in 0..self.params.work {
                acc = acc.wrapping_add((w as u64).wrapping_mul(hist[(w % 16) as usize] + 1));
            }
            core::ptr::write_volatile(scratch as *mut u64, acc);
            self.sink.fetch_add(acc & 0xFF, Ordering::Relaxed);
            // The consumer's 4 frees.
            self.alloc.free(scratch);
            self.alloc.free(index_block);
            self.alloc.free(qnode);
            self.alloc.free(task as *mut u8);
        }
        self.consumed.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// Runs the benchmark with `threads` total threads (1 producer +
/// `threads-1` consumers; with `threads == 1` the producer consumes its
/// own queue). `ops` counts completed tasks.
pub fn run<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    params: Params,
) -> WorkloadResult {
    let mut rng = TestRng::new(params.seed);
    let database: Vec<u32> = (0..params.database_size).map(|_| rng.next_u64() as u32).collect();
    let shared = Arc::new(Shared {
        alloc,
        queue: Queue::new(),
        queue_len: AtomicUsize::new(0),
        produced_done: AtomicBool::new(false),
        consumed: AtomicU64::new(0),
        database,
        params,
        sink: AtomicU64::new(0),
    });

    let shared2 = Arc::clone(&shared);
    let mut result = run_parallel(threads, move |t| {
        let s = &*shared2;
        let mut rng = TestRng::new(s.params.seed ^ (t as u64 + 0x1234));
        if t == 0 {
            // Producer.
            let mut produced = 0u64;
            while produced < s.params.tasks {
                if s.queue_len.load(Ordering::Relaxed) > HELP_THRESHOLD || threads == 1 {
                    // "the producer helps the consumers"
                    unsafe { s.consume_one(&mut rng) };
                }
                unsafe { s.produce_one(&mut rng) };
                produced += 1;
            }
            s.produced_done.store(true, Ordering::Release);
            // With no consumers, drain everything ourselves.
            if threads == 1 {
                while unsafe { s.consume_one(&mut rng) } {}
            }
            0
        } else {
            // Consumer: drain until production is over and the queue is
            // verifiably empty.
            let mut done = 0u64;
            loop {
                if unsafe { s.consume_one(&mut rng) } {
                    done += 1;
                } else if s.produced_done.load(Ordering::Acquire) {
                    if unsafe { !s.consume_one(&mut rng) } {
                        break;
                    }
                    done += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            done
        }
    });
    // `ops` = tasks completed (workers' counts miss the producer's own
    // helping; the shared counter is authoritative).
    result.ops = shared.consumed.load(Ordering::Relaxed);
    assert_eq!(result.ops, params.tasks, "all produced tasks must be consumed");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlheap::LockedHeap;
    use lfmalloc::LfMalloc;

    fn small_params() -> Params {
        Params { database_size: 10_000, tasks: 2_000, work: 100, seed: 7 }
    }

    #[test]
    fn completes_all_tasks_multi_thread() {
        let r = run(Arc::new(LfMalloc::new_default()), 4, small_params());
        assert_eq!(r.ops, 2_000);
    }

    #[test]
    fn completes_all_tasks_single_thread() {
        let r = run(Arc::new(LfMalloc::new_default()), 1, small_params());
        assert_eq!(r.ops, 2_000);
    }

    #[test]
    fn runs_on_locked_heap() {
        let r = run(Arc::new(LockedHeap::new()), 3, small_params());
        assert_eq!(r.ops, 2_000);
    }

    #[test]
    fn work_parameter_slows_consumers() {
        let a = Arc::new(LfMalloc::new_default());
        let fast = run(
            Arc::clone(&a),
            2,
            Params { work: 10, tasks: 1_000, database_size: 1_000, seed: 3 },
        );
        let slow = run(
            Arc::clone(&a),
            2,
            Params { work: 20_000, tasks: 1_000, database_size: 1_000, seed: 3 },
        );
        assert!(
            slow.elapsed > fast.elapsed,
            "work knob has no effect: {:?} !> {:?}",
            slow.elapsed,
            fast.elapsed
        );
    }
}
