//! Threadtest (from the Hoard distribution).
//!
//! "Each thread performs 100 iterations of allocating 100,000 8-byte
//! blocks and then freeing them in order." Unlike Linux scalability,
//! many blocks are simultaneously live, so superblocks fill up and the
//! FULL/PARTIAL machinery is exercised continuously.

use crate::common::{run_parallel, WorkloadResult};
use malloc_api::RawMalloc;
use std::sync::Arc;

/// The paper's block size.
pub const BLOCK_SIZE: usize = 8;

/// Runs the benchmark: each of `threads` threads does `iterations`
/// rounds of (allocate `batch` blocks, free them in allocation order).
/// `ops` counts malloc/free pairs.
pub fn run<A: RawMalloc + Send + Sync + 'static>(
    alloc: Arc<A>,
    threads: usize,
    iterations: u64,
    batch: usize,
) -> WorkloadResult {
    run_parallel(threads, move |_t| {
        let mut blocks: Vec<*mut u8> = Vec::with_capacity(batch);
        for _ in 0..iterations {
            for _ in 0..batch {
                let p = unsafe { alloc.malloc(BLOCK_SIZE) };
                debug_assert!(!p.is_null());
                unsafe { core::ptr::write_volatile(p, 1) };
                blocks.push(p);
            }
            // "freeing them in order"
            for p in blocks.drain(..) {
                unsafe { alloc.free(p) };
            }
        }
        iterations * batch as u64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlheap::LockedHeap;
    use lfmalloc::LfMalloc;

    #[test]
    fn runs_on_lfmalloc() {
        let r = run(Arc::new(LfMalloc::new_default()), 2, 5, 1_000);
        assert_eq!(r.ops, 2 * 5 * 1_000);
    }

    #[test]
    fn runs_on_locked_heap() {
        let r = run(Arc::new(LockedHeap::new()), 2, 3, 500);
        assert_eq!(r.ops, 2 * 3 * 500);
    }

    #[test]
    fn deep_batches_exercise_many_superblocks() {
        // 20k live 8-byte blocks spans ~20 superblocks of the 16-byte
        // class.
        let a = Arc::new(LfMalloc::new_default());
        let r = run(Arc::clone(&a), 1, 1, 20_000);
        assert_eq!(r.ops, 20_000);
        assert!(a.hyperblock_count() >= 1);
    }
}
